package rfs

import (
	"errors"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vcpu"
)

// ioctlCodec is one entry of the remote-ioctl marshalling registry. Every
// /proc ioctl that should work across RFS needs one of these: code that
// knows the operand's size, direction and layout. Contrast with read/write,
// which forward as plain bytes — precisely the paper's argument for the
// restructured interface.
type ioctlCodec struct {
	encodeArg    func(arg interface{}) ([]byte, error)
	decodeArg    func(b []byte) (interface{}, error)
	encodeResult func(arg interface{}) ([]byte, error)
	decodeResult func(b []byte, arg interface{}) error
}

var errBadArg = errors.New("rfs: ioctl argument has the wrong type")

// nothing is the codec piece for absent halves.
func nothingIn(arg interface{}) ([]byte, error)     { return nil, nil }
func nothingOut(b []byte, arg interface{}) error    { return nil }
func makeNothing(b []byte) (interface{}, error)     { return nil, nil }
func resultNothing(arg interface{}) ([]byte, error) { return nil, nil }

// noArgCodec: commands with no operand at all (PIOCSFORK etc.).
var noArgCodec = ioctlCodec{
	encodeArg:    nothingIn,
	decodeArg:    makeNothing,
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

// intInCodec: commands taking *int (PIOCKILL, PIOCNICE, ...).
var intInCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		v, ok := arg.(*int)
		if !ok || v == nil {
			return nil, errBadArg
		}
		m := &buf{}
		m.putU32(uint32(*v))
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		v := int(int32(m.u32()))
		if m.err != nil {
			return nil, m.err
		}
		return &v, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

// intOutCodec: commands filling *int (PIOCNMAP, PIOCMAXSIG).
var intOutCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) {
		v := 0
		return &v, nil
	},
	encodeResult: func(arg interface{}) ([]byte, error) {
		v, ok := arg.(*int)
		if !ok {
			return nil, errBadArg
		}
		m := &buf{}
		m.putU32(uint32(*v))
		return m.b, nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		v, ok := arg.(*int)
		if !ok || v == nil {
			return errBadArg
		}
		m := &buf{b: b}
		*v = int(int32(m.u32()))
		return m.err
	},
}

// statusOutCodec: commands filling *kernel.ProcStatus, where a nil argument
// is permitted (PIOCSTOP, PIOCWSTOP).
var statusOutCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) {
		return &kernel.ProcStatus{}, nil
	},
	encodeResult: func(arg interface{}) ([]byte, error) {
		st, ok := arg.(*kernel.ProcStatus)
		if !ok {
			return nil, errBadArg
		}
		return procfs2.EncodeStatus(*st), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		if arg == nil {
			return nil
		}
		st, ok := arg.(*kernel.ProcStatus)
		if !ok {
			return errBadArg
		}
		if st == nil {
			return nil
		}
		got, err := procfs2.DecodeStatus(b)
		if err != nil {
			return err
		}
		*st = got
		return nil
	},
}

// sigSetInCodec / sigSetOutCodec.
var sigSetInCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		s, ok := arg.(*types.SigSet)
		if !ok || s == nil {
			return nil, errBadArg
		}
		m := &buf{}
		m.putU64(s[0])
		m.putU64(s[1])
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		s := types.SigSet{m.u64(), m.u64()}
		if m.err != nil {
			return nil, m.err
		}
		return &s, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

var sigSetOutCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) { return &types.SigSet{}, nil },
	encodeResult: func(arg interface{}) ([]byte, error) {
		s, ok := arg.(*types.SigSet)
		if !ok {
			return nil, errBadArg
		}
		m := &buf{}
		m.putU64(s[0])
		m.putU64(s[1])
		return m.b, nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		s, ok := arg.(*types.SigSet)
		if !ok || s == nil {
			return errBadArg
		}
		m := &buf{b: b}
		*s = types.SigSet{m.u64(), m.u64()}
		return m.err
	},
}

var fltSetInCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		s, ok := arg.(*types.FltSet)
		if !ok || s == nil {
			return nil, errBadArg
		}
		m := &buf{}
		m.putU64(s[0])
		m.putU64(s[1])
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		s := types.FltSet{m.u64(), m.u64()}
		if m.err != nil {
			return nil, m.err
		}
		return &s, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

var sysSetInCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		s, ok := arg.(*types.SysSet)
		if !ok || s == nil {
			return nil, errBadArg
		}
		m := &buf{}
		for _, w := range s {
			m.putU64(w)
		}
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		var s types.SysSet
		for i := range s {
			s[i] = m.u64()
		}
		if m.err != nil {
			return nil, m.err
		}
		return &s, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

func encodeRegs(r *vcpu.Regs) []byte {
	m := &buf{}
	for _, v := range r.R {
		m.putU32(v)
	}
	m.putU32(r.PC)
	m.putU32(r.SP)
	m.putU32(r.PSW)
	return m.b
}

func decodeRegs(b []byte) (vcpu.Regs, error) {
	m := &buf{b: b}
	var r vcpu.Regs
	for i := range r.R {
		r.R[i] = m.u32()
	}
	r.PC = m.u32()
	r.SP = m.u32()
	r.PSW = m.u32()
	return r, m.err
}

var regsInCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		r, ok := arg.(*vcpu.Regs)
		if !ok || r == nil {
			return nil, errBadArg
		}
		return encodeRegs(r), nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		r, err := decodeRegs(b)
		if err != nil {
			return nil, err
		}
		return &r, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

var regsOutCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) { return &vcpu.Regs{}, nil },
	encodeResult: func(arg interface{}) ([]byte, error) {
		r, ok := arg.(*vcpu.Regs)
		if !ok {
			return nil, errBadArg
		}
		return encodeRegs(r), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		r, ok := arg.(*vcpu.Regs)
		if !ok || r == nil {
			return errBadArg
		}
		got, err := decodeRegs(b)
		if err != nil {
			return err
		}
		*r = got
		return nil
	},
}

var runCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		m := &buf{}
		var f kernel.RunFlags
		if arg != nil {
			rf, ok := arg.(*kernel.RunFlags)
			if !ok {
				return nil, errBadArg
			}
			if rf != nil {
				f = *rf
			}
		}
		var bits uint32
		set := func(cond bool, bit uint32) {
			if cond {
				bits |= bit
			}
		}
		set(f.ClearSig, 1)
		set(f.ClearFault, 2)
		set(f.Abort, 4)
		set(f.Step, 8)
		set(f.Stop, 16)
		set(f.SetPC, 32)
		m.putU32(bits)
		m.putU32(f.PC)
		m.putU32(uint32(f.SetSig))
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		bits := m.u32()
		pc := m.u32()
		setSig := int(m.u32())
		if m.err != nil {
			return nil, m.err
		}
		return &kernel.RunFlags{
			ClearSig:   bits&1 != 0,
			ClearFault: bits&2 != 0,
			Abort:      bits&4 != 0,
			Step:       bits&8 != 0,
			Stop:       bits&16 != 0,
			SetPC:      bits&32 != 0,
			PC:         pc,
			SetSig:     setSig,
		}, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

var psinfoCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) { return &kernel.PSInfo{}, nil },
	encodeResult: func(arg interface{}) ([]byte, error) {
		info, ok := arg.(*kernel.PSInfo)
		if !ok {
			return nil, errBadArg
		}
		return procfs2.EncodePSInfo(*info), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		info, ok := arg.(*kernel.PSInfo)
		if !ok || info == nil {
			return errBadArg
		}
		got, err := procfs2.DecodePSInfo(b)
		if err != nil {
			return err
		}
		*info = got
		return nil
	},
}

var credCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) { return &types.Cred{}, nil },
	encodeResult: func(arg interface{}) ([]byte, error) {
		c, ok := arg.(*types.Cred)
		if !ok {
			return nil, errBadArg
		}
		return procfs2.EncodeCred(*c), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		c, ok := arg.(*types.Cred)
		if !ok || c == nil {
			return errBadArg
		}
		got, err := procfs2.DecodeCred(b)
		if err != nil {
			return err
		}
		*c = got
		return nil
	},
}

var mapCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) { return &[]procfs.PrMap{}, nil },
	encodeResult: func(arg interface{}) ([]byte, error) {
		maps, ok := arg.(*[]procfs.PrMap)
		if !ok {
			return nil, errBadArg
		}
		entries := make([]procfs2.MapEntry, len(*maps))
		for i, pm := range *maps {
			entries[i] = procfs2.MapEntry{
				Vaddr: pm.Vaddr, Size: pm.Size, Off: pm.Off,
				Prot: uint32(pm.Prot), Shared: pm.Shared,
				Kind: int32(pm.Kind), Name: pm.Name,
			}
		}
		return procfs2.EncodeMap(entries), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		maps, ok := arg.(*[]procfs.PrMap)
		if !ok || maps == nil {
			return errBadArg
		}
		entries, err := procfs2.DecodeMap(b)
		if err != nil {
			return err
		}
		out := make([]procfs.PrMap, len(entries))
		for i, e := range entries {
			out[i] = procfs.PrMap{
				Vaddr: e.Vaddr, Size: e.Size, Off: e.Off,
				Prot: mem.Prot(e.Prot), Shared: e.Shared,
				Kind: mem.SegKind(e.Kind), Name: e.Name,
			}
		}
		*maps = out
		return nil
	},
}

var usageCodec = ioctlCodec{
	encodeArg: nothingIn,
	decodeArg: func(b []byte) (interface{}, error) { return &procfs.PrUsage{}, nil },
	encodeResult: func(arg interface{}) ([]byte, error) {
		u, ok := arg.(*procfs.PrUsage)
		if !ok {
			return nil, errBadArg
		}
		return procfs2.EncodeUsage(u.Usage, u.MinorFaults, u.COWFaults, u.WatchRecover, u.StackGrows), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		u, ok := arg.(*procfs.PrUsage)
		if !ok || u == nil {
			return errBadArg
		}
		rec, err := procfs2.DecodeUsage(b)
		if err != nil {
			return err
		}
		u.Usage = rec.Usage
		u.MinorFaults = rec.MinorFaults
		u.COWFaults = rec.COWFaults
		u.WatchRecover = rec.WatchRecover
		u.StackGrows = rec.StackGrows
		return nil
	},
}

var watchInCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		w, ok := arg.(*procfs.PrWatch)
		if !ok || w == nil {
			return nil, errBadArg
		}
		m := &buf{}
		m.putU32(w.Vaddr)
		m.putU32(w.Size)
		m.putU32(uint32(w.Mode))
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		w := procfs.PrWatch{Vaddr: m.u32(), Size: m.u32(), Mode: mem.Prot(m.u32())}
		if m.err != nil {
			return nil, m.err
		}
		return &w, nil
	},
	encodeResult: resultNothing,
	decodeResult: nothingOut,
}

// snapCodec carries PIOCSNAP: the filter and prior revision travel out, the
// whole record batch travels back in one frame — the round trip the batched
// ioctl exists to save multiplied across the table.
var snapCodec = ioctlCodec{
	encodeArg: func(arg interface{}) ([]byte, error) {
		sn, ok := arg.(*procfs.PrSnap)
		if !ok || sn == nil {
			return nil, errBadArg
		}
		m := &buf{}
		if sn.WithUsage {
			m.putU32(1)
		} else {
			m.putU32(0)
		}
		m.putU64(sn.Rev)
		m.putU32(uint32(len(sn.Pids)))
		for _, pid := range sn.Pids {
			m.putU32(uint32(pid))
		}
		return m.b, nil
	},
	decodeArg: func(b []byte) (interface{}, error) {
		m := &buf{b: b}
		sn := &procfs.PrSnap{WithUsage: m.u32() != 0, Rev: m.u64()}
		n := int(m.u32())
		if m.err != nil {
			return nil, m.err
		}
		if n < 0 || n > 1<<20 {
			return nil, errBadArg
		}
		if n > 0 {
			sn.Pids = make([]int, 0, n)
			for i := 0; i < n && m.err == nil; i++ {
				sn.Pids = append(sn.Pids, int(int32(m.u32())))
			}
		}
		if m.err != nil {
			return nil, m.err
		}
		return sn, nil
	},
	encodeResult: func(arg interface{}) ([]byte, error) {
		sn, ok := arg.(*procfs.PrSnap)
		if !ok || sn == nil {
			return nil, errBadArg
		}
		recs := make([]procfs2.SnapRec, len(sn.Procs))
		for i, r := range sn.Procs {
			recs[i] = procfs2.SnapRec{Info: r.Info, Usage: procfs2.UsageRecord{
				Usage:       r.Usage.Usage,
				MinorFaults: r.Usage.MinorFaults, COWFaults: r.Usage.COWFaults,
				WatchRecover: r.Usage.WatchRecover, StackGrows: r.Usage.StackGrows,
			}}
		}
		return procfs2.EncodeSnap(sn.Rev, sn.Churned, recs), nil
	},
	decodeResult: func(b []byte, arg interface{}) error {
		sn, ok := arg.(*procfs.PrSnap)
		if !ok || sn == nil {
			return errBadArg
		}
		rev, churned, recs, err := procfs2.DecodeSnap(b)
		if err != nil {
			return err
		}
		sn.Rev, sn.Churned = rev, churned
		sn.Procs = make([]procfs.PrSnapRec, len(recs))
		for i, r := range recs {
			sn.Procs[i] = procfs.PrSnapRec{Info: r.Info, Usage: procfs.PrUsage{
				Usage:       r.Usage.Usage,
				MinorFaults: r.Usage.MinorFaults, COWFaults: r.Usage.COWFaults,
				WatchRecover: r.Usage.WatchRecover, StackGrows: r.Usage.StackGrows,
			}}
		}
		return nil
	},
}

// ioctlCodecs is the registry: every remotable /proc ioctl, each with its
// bespoke marshalling. Commands without codecs (the deprecated pointer-
// returning PIOCGETPR, the descriptor-returning PIOCOPENM) cannot cross the
// network at all — another limitation read/write does not share.
var ioctlCodecs = map[int]ioctlCodec{
	procfs.PIOCSTATUS: statusOutCodec,
	procfs.PIOCSTOP:   statusOutCodec,
	procfs.PIOCWSTOP:  statusOutCodec,
	procfs.PIOCRUN:    runCodec,
	procfs.PIOCSTRACE: sigSetInCodec,
	procfs.PIOCGTRACE: sigSetOutCodec,
	procfs.PIOCSSIG:   intInCodec,
	procfs.PIOCKILL:   intInCodec,
	procfs.PIOCUNKILL: intInCodec,
	procfs.PIOCSHOLD:  sigSetInCodec,
	procfs.PIOCGHOLD:  sigSetOutCodec,
	procfs.PIOCMAXSIG: intOutCodec,
	procfs.PIOCSFAULT: fltSetInCodec,
	procfs.PIOCCFAULT: noArgCodec,
	procfs.PIOCSENTRY: sysSetInCodec,
	procfs.PIOCSEXIT:  sysSetInCodec,
	procfs.PIOCSFORK:  noArgCodec,
	procfs.PIOCRFORK:  noArgCodec,
	procfs.PIOCSRLC:   noArgCodec,
	procfs.PIOCRRLC:   noArgCodec,
	procfs.PIOCGREG:   regsOutCodec,
	procfs.PIOCSREG:   regsInCodec,
	procfs.PIOCNMAP:   intOutCodec,
	procfs.PIOCMAP:    mapCodec,
	procfs.PIOCCRED:   credCodec,
	procfs.PIOCPSINFO: psinfoCodec,
	procfs.PIOCNICE:   intInCodec,
	procfs.PIOCUSAGE:  usageCodec,
	procfs.PIOCSWATCH: watchInCodec,
	procfs.PIOCCWATCH: noArgCodec,
	procfs.PIOCSNAP:   snapCodec,
}
