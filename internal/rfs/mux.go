package rfs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The multiplexed protocol. The legacy ("stop-and-wait") protocol carries
// bare request/response bodies, one exchange in flight per connection. The
// multiplexed protocol prefixes every frame payload with a u32 request tag:
//
//	frame    = u32 length | payload
//	payload  = u32 tag    | body          (body as in the legacy protocol)
//
// The client assigns tags and demultiplexes responses by tag, so any number
// of goroutines can pipeline requests on one connection; the server decodes
// frames off the wire, dispatches each request on a worker, and writes
// responses out of order as they complete. A connection declares itself
// multiplexed with a handshake: the client's first frame is muxMagic, which
// the server echoes. Legacy clients never collide with the handshake (their
// first payload byte is an opcode < 0x20), so one listener serves both.
const muxMagic = "RFS/mux1"

// ErrTimeout is returned when a request's deadline expires before its
// response arrives. Idempotent requests may be retried past it (see
// MuxTransport.Retries); for the rest it is the final answer.
var ErrTimeout = errors.New("rfs: request deadline exceeded")

// ErrClosed is returned for requests issued against a closed transport.
var ErrClosed = errors.New("rfs: transport closed")

// MuxStats counts transport-level events, for tests and diagnostics.
type MuxStats struct {
	Sent    int64 // request frames handed to the writer
	Expired int64 // requests whose deadline fired
	Retried int64 // idempotent re-sends after an expiry
	Orphans int64 // responses bearing no in-flight tag (late or duplicated), dropped
}

type muxReply struct {
	body []byte
	err  error
}

// MuxTransport speaks the tagged protocol over a stream connection. Many
// goroutines may call RoundTrip concurrently; their requests are pipelined
// on the single connection and matched back to callers by tag. The zero
// value is not usable — construct with NewMuxTransport.
type MuxTransport struct {
	// Timeout bounds each request round trip; 0 waits forever.
	Timeout time.Duration
	// Retries is how many times an idempotent request is re-sent after its
	// deadline expires. Non-idempotent requests are never retried: the
	// server may have executed them.
	Retries int
	// Backoff is the pause before the first retry, doubling per attempt.
	// Zero selects a small default.
	Backoff time.Duration

	conn io.ReadWriter
	r    *bufio.Reader
	wch  chan []byte

	mu       sync.Mutex
	inflight map[uint32]chan muxReply
	nextTag  uint32
	err      error // sticky transport failure
	closed   bool
	stats    MuxStats

	quit       chan struct{}
	readerDone chan struct{}
	writerDone chan struct{}
}

// NewMuxTransport performs the multiplexing handshake on conn and starts
// the transport's reader and writer goroutines. If conn also implements
// io.Closer, Close tears it down.
func NewMuxTransport(conn io.ReadWriter) (*MuxTransport, error) {
	if err := writeFrame(conn, []byte(muxMagic)); err != nil {
		return nil, err
	}
	ack, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if string(ack) != muxMagic {
		return nil, errors.New("rfs: peer did not acknowledge mux handshake (legacy server?)")
	}
	t := &MuxTransport{
		conn:       conn,
		r:          bufio.NewReaderSize(conn, 64<<10),
		wch:        make(chan []byte),
		inflight:   map[uint32]chan muxReply{},
		quit:       make(chan struct{}),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	go t.readLoop()
	go t.writeLoop()
	return t, nil
}

// Stats returns a snapshot of the transport counters.
func (t *MuxTransport) Stats() MuxStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// RoundTrip implements Transport.
func (t *MuxTransport) RoundTrip(req []byte) ([]byte, error) {
	return t.RoundTripIdem(req, false)
}

// RoundTripIdem implements IdemTransport: idempotent requests that hit
// their deadline are re-sent (with a fresh tag) up to Retries times with
// exponential backoff.
func (t *MuxTransport) RoundTripIdem(req []byte, idempotent bool) ([]byte, error) {
	attempts := 1
	if idempotent && t.Retries > 0 {
		attempts += t.Retries
	}
	backoff := t.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var resp []byte
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			t.mu.Lock()
			t.stats.Retried++
			t.mu.Unlock()
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err = t.send(req)
		if err == nil || !errors.Is(err, ErrTimeout) {
			return resp, err
		}
	}
	return nil, err
}

// send performs one tagged exchange: register a tag, enqueue the frame,
// wait for the demultiplexed reply or the deadline.
func (t *MuxTransport) send(req []byte) ([]byte, error) {
	t.mu.Lock()
	if t.err != nil {
		err := t.err
		t.mu.Unlock()
		return nil, err
	}
	t.nextTag++
	tag := t.nextTag
	ch := make(chan muxReply, 1)
	t.inflight[tag] = ch
	t.stats.Sent++
	t.mu.Unlock()

	frame := make([]byte, 4+len(req))
	binary.BigEndian.PutUint32(frame, tag)
	copy(frame[4:], req)

	select {
	case t.wch <- frame:
	case <-t.quit:
		t.forget(tag)
		return nil, t.failure(ErrClosed)
	case <-t.writerDone:
		t.forget(tag)
		return nil, t.failure(ErrClosed)
	}

	var deadline <-chan time.Time
	if t.Timeout > 0 {
		timer := time.NewTimer(t.Timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case r := <-ch:
		return r.body, r.err
	case <-deadline:
		if t.forget(tag) {
			t.mu.Lock()
			t.stats.Expired++
			t.mu.Unlock()
			return nil, ErrTimeout
		}
		// The reply raced the deadline and was already claimed off the
		// in-flight table; it is sitting in the channel.
		r := <-ch
		return r.body, r.err
	}
}

// forget removes tag from the in-flight table, reporting whether it was
// still there. A response arriving for a forgotten tag is an orphan and is
// dropped — this is what makes expired requests and duplicated responses
// safe.
func (t *MuxTransport) forget(tag uint32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.inflight[tag]
	delete(t.inflight, tag)
	return ok
}

// fail records the first transport failure and delivers it to every
// in-flight request; later sends observe the sticky error immediately.
func (t *MuxTransport) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	err = t.err
	for tag, ch := range t.inflight {
		delete(t.inflight, tag)
		ch <- muxReply{err: err}
	}
	t.mu.Unlock()
}

// failure returns the sticky error, recording fallback if none is set yet.
func (t *MuxTransport) failure(fallback error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = fallback
	}
	return t.err
}

func (t *MuxTransport) readLoop() {
	defer close(t.readerDone)
	for {
		p, err := readFrame(t.r)
		if err != nil {
			t.fail(err)
			return
		}
		if len(p) < 4 {
			t.fail(errors.New("rfs: mux response frame too short"))
			return
		}
		tag := binary.BigEndian.Uint32(p)
		t.mu.Lock()
		ch, ok := t.inflight[tag]
		if ok {
			delete(t.inflight, tag)
		} else {
			t.stats.Orphans++
		}
		t.mu.Unlock()
		if ok {
			ch <- muxReply{body: p[4:]}
		}
	}
}

// writeLoop coalesces: whatever frames are queued when the writer comes
// around go out in one Write. With N callers pipelining, wire syscalls
// amortize across the whole flight instead of costing one per request.
func (t *MuxTransport) writeLoop() {
	defer close(t.writerDone)
	var out []byte
	for {
		select {
		case frame := <-t.wch:
			out = appendFrame(out[:0], frame)
			n := 1
			// A yield between gathers lets goroutines that woke together
			// (their responses arrived in one batch) enqueue their next
			// requests, so the flight stays coalesced instead of decaying
			// into one-frame writes.
			for spin := 0; spin < 2; spin++ {
			gather:
				for {
					select {
					case f := <-t.wch:
						out = appendFrame(out, f)
						n++
					default:
						break gather
					}
				}
				if n >= t.pending() {
					break
				}
				runtime.Gosched()
			}
			if _, err := t.conn.Write(out); err != nil {
				t.fail(err)
				return
			}
		case <-t.quit:
			return
		}
	}
}

// pending reports how many requests are registered in flight.
func (t *MuxTransport) pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inflight)
}

// appendFrame appends one length-prefixed frame to out.
func appendFrame(out, p []byte) []byte {
	out = binary.BigEndian.AppendUint32(out, uint32(len(p)))
	return append(out, p...)
}

// Close shuts the transport down: in-flight requests fail with ErrClosed
// (or the earlier sticky error), and the connection is closed if it can be.
func (t *MuxTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	closer, closable := t.conn.(io.Closer)
	if closable {
		closer.Close()
	}
	t.fail(ErrClosed)
	<-t.writerDone
	if closable {
		// The conn close unblocks the reader's pending readFrame.
		<-t.readerDone
	}
	return nil
}

var _ IdemTransport = (*MuxTransport)(nil)

// --- server side ---

type muxFrame struct {
	tag  uint32
	body []byte
}

// muxBatchLimit caps how many queued read-mostly requests one worker will
// serve under a single Server.Lock acquisition.
const muxBatchLimit = 16

// readMostlyBody reports whether body is a request safe to batch with other
// reads under one lock acquisition (it is also how the batch is cut short:
// a mutating op ends the drain).
func readMostlyBody(body []byte) bool {
	return len(body) > 0 && idempotentOp(body[0])
}

// ServeMux serves one multiplexed connection: it expects the client's
// handshake frame, acknowledges it, and then decodes tagged requests,
// dispatching each on a worker and writing responses out of order as they
// complete. Kernel access stays serialized via Server.Lock; consecutive
// read-mostly requests are batched under one acquisition.
func (s *Server) ServeMux(conn io.ReadWriter) error {
	hello, err := readFrame(conn)
	if err != nil {
		return err
	}
	if string(hello) != muxMagic {
		return errors.New("rfs: client did not offer mux handshake")
	}
	if err := writeFrame(conn, []byte(muxMagic)); err != nil {
		return err
	}
	return s.serveMux(conn)
}

// serveMux runs after the handshake has been consumed and acknowledged.
func (s *Server) serveMux(conn io.ReadWriter) error {
	workers := s.MuxWorkers
	if workers <= 0 {
		workers = 4
	}
	reqs := make(chan muxFrame, 4*workers)
	resps := make(chan []byte, 4*workers)
	writeErr := make(chan error, 1)
	writerDone := make(chan struct{})
	// outstanding counts requests read off the wire whose responses have not
	// been written yet; the writer uses it to decide whether yielding will
	// grow the batch.
	var outstanding int64
	go func() {
		defer close(writerDone)
		var out []byte
		for frame := range resps {
			var err error
			if s.MuxFaults != nil {
				// Faults are per-frame decisions; no coalescing.
				atomic.AddInt64(&outstanding, -1)
				err = s.MuxFaults.writeFrame(conn, frame)
			} else {
				out = appendFrame(out[:0], frame)
				n := int64(1)
				// Same trick as the client's writeLoop: if workers are still
				// holding responses for requests already read, a yield lets
				// them land in this batch instead of fragmenting the flight.
				for spin := 0; spin < 2; spin++ {
				gather:
					for {
						select {
						case f, ok := <-resps:
							if !ok {
								break gather
							}
							out = appendFrame(out, f)
							n++
						default:
							break gather
						}
					}
					if n >= atomic.LoadInt64(&outstanding) {
						break
					}
					runtime.Gosched()
				}
				atomic.AddInt64(&outstanding, -n)
				_, err = conn.Write(out)
			}
			if err != nil {
				select {
				case writeErr <- err:
				default:
				}
				// Keep draining so workers never block on a dead writer.
				for range resps {
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.muxWorker(reqs, resps)
		}()
	}

	var rerr error
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		p, err := readFrame(br)
		if err != nil {
			if err != io.EOF {
				rerr = err
			}
			break
		}
		if len(p) < 4 {
			rerr = errors.New("rfs: mux request frame too short")
			break
		}
		atomic.AddInt64(&outstanding, 1)
		reqs <- muxFrame{tag: binary.BigEndian.Uint32(p), body: p[4:]}
	}
	close(reqs)
	wg.Wait()
	close(resps)
	<-writerDone
	select {
	case err := <-writeErr:
		if rerr == nil {
			rerr = err
		}
	default:
	}
	return rerr
}

// muxWorker serves requests. A read-mostly request opportunistically drains
// more queued requests and serves the whole batch under one Server.Lock
// acquisition — on a busy connection the per-request lock traffic collapses
// into one acquisition per batch.
func (s *Server) muxWorker(reqs <-chan muxFrame, resps chan<- []byte) {
	for rq := range reqs {
		batch := []muxFrame{rq}
		if readMostlyBody(rq.body) {
		drain:
			for len(batch) < muxBatchLimit {
				select {
				case next, ok := <-reqs:
					if !ok {
						break drain
					}
					batch = append(batch, next)
					if !readMostlyBody(next.body) {
						break drain
					}
				default:
					break drain
				}
			}
		}
		out := make([][]byte, len(batch))
		s.Lock.Lock()
		for i, q := range batch {
			out[i] = s.handleLocked(q.body)
		}
		s.Lock.Unlock()
		for i, q := range batch {
			frame := make([]byte, 4+len(out[i]))
			binary.BigEndian.PutUint32(frame, q.tag)
			copy(frame[4:], out[i])
			resps <- frame
		}
	}
}
