package rfs_test

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// leakCheck snapshots the goroutine count and returns a func that fails the
// test if the count has not returned to the baseline — the mux transport
// and the concurrent server must not strand goroutines, whatever the wire
// did to them.
func leakCheck(t *testing.T) func() {
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<17)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// muxSystem boots a system, exports it over one net.Pipe connection served
// by the concurrent mux path, and returns the shared transport.
func muxSystem(t *testing.T, faults *rfs.Faults) (*repro.System, *rfs.MuxTransport, func()) {
	t.Helper()
	s := repro.NewSystem()
	var lock sync.Mutex
	srv := rfs.NewServer(s.NS, &lock)
	srv.MuxFaults = faults
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(server)
	}()
	mt, err := rfs.NewMuxTransport(client)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		mt.Close()
		server.Close()
		<-done
	}
	return s, mt, cleanup
}

// Many goroutines pipeline mixed operations — read, write, stat, readdir,
// ioctl, poll — on one connection, one client per goroutine. Responses
// complete out of order on the server; per-goroutine unique content catches
// any tag mixup. Run under -race by `make race`.
func TestMuxPipelineStress(t *testing.T) {
	defer leakCheck(t)()
	s, mt, cleanup := muxSystem(t, nil)
	defer cleanup()

	p, err := s.SpawnProg("stressee", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)

	const workers = 8
	const rounds = 40
	for g := 0; g < workers; g++ {
		s.FS.WriteFile(fmt.Sprintf("/tmp/g%d", g),
			[]byte(fmt.Sprintf("content-of-goroutine-%d", g)), 0o644, 0, 0)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := rfs.NewClient(mt, types.RootCred())
			path := fmt.Sprintf("/tmp/g%d", g)
			want := fmt.Sprintf("content-of-goroutine-%d", g)
			for i := 0; i < rounds; i++ {
				attr, err := cl.Stat(path)
				if err != nil || attr.Size != int64(len(want)) {
					errs <- fmt.Errorf("g%d stat: %+v %v", g, attr, err)
					return
				}
				f, err := cl.Open(path, vfs.ORead|vfs.OWrite)
				if err != nil {
					errs <- fmt.Errorf("g%d open: %v", g, err)
					return
				}
				buf := make([]byte, 64)
				n, err := f.Pread(buf, 0)
				if err != nil || string(buf[:n]) != want {
					errs <- fmt.Errorf("g%d read got %q (%v): tag mixup?", g, buf[:n], err)
					return
				}
				if _, err := f.Pwrite([]byte(want), 0); err != nil {
					errs <- fmt.Errorf("g%d write: %v", g, err)
					return
				}
				f.Poll(vfs.PollIn) // plain files report nothing; must not error the stream
				if err := f.Close(); err != nil {
					errs <- fmt.Errorf("g%d close: %v", g, err)
					return
				}
				ents, err := cl.ReadDir("/tmp")
				if err != nil || len(ents) != workers {
					errs <- fmt.Errorf("g%d readdir: %d entries, %v", g, len(ents), err)
					return
				}
				pf, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead)
				if err != nil {
					errs <- fmt.Errorf("g%d proc open: %v", g, err)
					return
				}
				var st kernel.ProcStatus
				if err := pf.Ioctl(procfs.PIOCSTATUS, &st); err != nil || st.Pid != p.Pid {
					errs <- fmt.Errorf("g%d ioctl: pid=%d %v", g, st.Pid, err)
					return
				}
				pf.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := mt.Stats(); st.Sent < int64(workers*rounds*5) {
		t.Fatalf("sent = %d: the ops did not go through the mux transport", st.Sent)
	}
}

// The same pipelining over real TCP, and the legacy stop-and-wait client
// still served by the very same listener (compat mode).
func TestMuxOverTCPWithLegacyCompat(t *testing.T) {
	defer leakCheck(t)()
	s := repro.NewSystem()
	s.FS.WriteFile("/tmp/shared", []byte("over tcp"), 0o644, 0, 0)
	var lock sync.Mutex
	srv := rfs.NewServer(s.NS, &lock)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer ln.Close()
	var served sync.WaitGroup
	served.Add(1)
	go func() {
		defer served.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			served.Add(1)
			go func() {
				defer served.Done()
				defer conn.Close()
				srv.ServeConn(conn)
			}()
		}
	}()

	// Mux client.
	mconn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	mt, err := rfs.NewMuxTransport(mconn)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := rfs.NewClient(mt, types.RootCred())
			for i := 0; i < 25; i++ {
				f, err := cl.Open("/tmp/shared", vfs.ORead)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 16)
				n, err := f.Pread(buf, 0)
				if err != nil || string(buf[:n]) != "over tcp" {
					t.Errorf("read: %q %v", buf[:n], err)
				}
				f.Close()
			}
		}()
	}
	// Legacy client on its own connection against the same listener.
	lconn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	lcl := rfs.NewClient(&rfs.ConnTransport{Conn: lconn}, types.RootCred())
	for i := 0; i < 10; i++ {
		ents, err := lcl.ReadDir("/tmp")
		if err != nil || len(ents) != 1 {
			t.Fatalf("legacy readdir: %v %v", ents, err)
		}
	}
	wg.Wait()
	mt.Close()
	mconn.Close()
	lconn.Close()
	ln.Close()
	served.Wait()
}

// The unmodified tools still run over the new transport: remote ps via
// PIOCPSINFO through a pipelined connection.
func TestMuxRemotePS(t *testing.T) {
	defer leakCheck(t)()
	s, mt, cleanup := muxSystem(t, nil)
	defer cleanup()
	s.SpawnProg("app1", spin, types.UserCred(100, 10))
	s.SpawnProg("app2", spin, types.UserCred(200, 20))
	s.Run(3)
	cl := rfs.NewClient(mt, types.RootCred())
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range ents {
		f, err := cl.Open("/proc/"+e.Name, vfs.ORead)
		if err != nil {
			continue
		}
		var info kernel.PSInfo
		if err := f.Ioctl(procfs.PIOCPSINFO, &info); err == nil {
			lines = append(lines, info.Comm)
		}
		f.Close()
	}
	joined := strings.Join(lines, " ")
	for _, want := range []string{"sched", "init", "app1", "app2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("remote ps over mux missing %q: %v", want, lines)
		}
	}
}
