// Package rfs implements Remote File Sharing for the simulated system: a
// protocol that forwards file operations — open, close, read, write,
// readdir, stat, and (with effort) ioctl — across a connection, so that any
// resource accessible within the file system name space is accessible
// remotely. Because /proc is just a file system type under the VFS, with
// appropriate permission it is possible to inspect, modify and control
// processes running on any machine in an RFS network; this extension of
// capability "for free" is an additional justification for implementing
// resources this way.
//
// The package also demonstrates the paper's argument for the /proc
// restructuring: read and write forward with no per-operation knowledge,
// while forwarding ioctl requires the per-command marshalling registry in
// ioctlcodec.go — "the unstructured nature of ioctl operations and the
// variability of operand sizes and I/O directions make it difficult to
// cleanly separate the client/server interactions".
package rfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/vfs"
)

// Protocol operation codes.
const (
	opOpen = iota + 1
	opClose
	opRead
	opWrite
	opReadDir
	opStat
	opIoctl
	opPoll
)

// Error codes carried over the wire, mapped back to vfs errors client-side.
const (
	errNone = iota
	errNotExist
	errPerm
	errNotDir
	errIsDir
	errExist
	errBusy
	errInval
	errBadFD
	errStale
	errAgain
	errNoIoctl
	errEOF
	errOther
	// Appended after errOther so existing code assignments stay wire-stable:
	// EIO and ENOSPC must survive the codec as errors.Is identities (a remote
	// client distinguishes a full file system from a broken one), not decay
	// to errOther's opaque message.
	errIO
	errNoSpace
)

// wireErrs maps the vfs sentinel errors to their wire codes, in match order.
var wireErrs = []struct {
	code uint32
	err  error
}{
	{errNotExist, vfs.ErrNotExist},
	{errPerm, vfs.ErrPerm},
	{errNotDir, vfs.ErrNotDir},
	{errIsDir, vfs.ErrIsDir},
	{errExist, vfs.ErrExist},
	{errBusy, vfs.ErrBusy},
	{errInval, vfs.ErrInval},
	{errBadFD, vfs.ErrBadFD},
	{errStale, vfs.ErrStale},
	{errAgain, vfs.ErrAgain},
	{errNoIoctl, vfs.ErrNoIoctl},
	{errEOF, vfs.EOF},
	{errIO, vfs.ErrIO},
	{errNoSpace, vfs.ErrNoSpace},
}

func encodeErr(err error) (uint32, string) {
	if err == nil {
		return errNone, ""
	}
	// errors.Is, not ==: a handler that wraps a sentinel (fmt.Errorf with
	// %w) must still cross the wire as that sentinel, or the client can no
	// longer branch on it.
	for _, w := range wireErrs {
		if errors.Is(err, w.err) {
			return w.code, ""
		}
	}
	return errOther, err.Error()
}

func decodeErr(code uint32, msg string) error {
	switch code {
	case errNone:
		return nil
	case errNotExist:
		return vfs.ErrNotExist
	case errPerm:
		return vfs.ErrPerm
	case errNotDir:
		return vfs.ErrNotDir
	case errIsDir:
		return vfs.ErrIsDir
	case errExist:
		return vfs.ErrExist
	case errBusy:
		return vfs.ErrBusy
	case errInval:
		return vfs.ErrInval
	case errBadFD:
		return vfs.ErrBadFD
	case errStale:
		return vfs.ErrStale
	case errAgain:
		return vfs.ErrAgain
	case errNoIoctl:
		return vfs.ErrNoIoctl
	case errEOF:
		return vfs.EOF
	case errIO:
		return vfs.ErrIO
	case errNoSpace:
		return vfs.ErrNoSpace
	}
	if msg == "" {
		msg = "remote error"
	}
	return errors.New("rfs: " + msg)
}

// buf is a simple big-endian message builder/parser.
type buf struct {
	b   []byte
	off int
	err error
}

func (m *buf) putU8(v uint8)   { m.b = append(m.b, v) }
func (m *buf) putU32(v uint32) { m.b = binary.BigEndian.AppendUint32(m.b, v) }
func (m *buf) putU64(v uint64) { m.b = binary.BigEndian.AppendUint64(m.b, v) }
func (m *buf) putI64(v int64)  { m.putU64(uint64(v)) }
func (m *buf) putStr(s string) {
	m.putU32(uint32(len(s)))
	m.b = append(m.b, s...)
}
func (m *buf) putBytes(p []byte) {
	m.putU32(uint32(len(p)))
	m.b = append(m.b, p...)
}

var errShort = errors.New("rfs: truncated message")

func (m *buf) u8() uint8 {
	if m.err != nil || m.off >= len(m.b) {
		m.err = errShort
		return 0
	}
	v := m.b[m.off]
	m.off++
	return v
}

func (m *buf) u32() uint32 {
	if m.err != nil || m.off+4 > len(m.b) {
		m.err = errShort
		return 0
	}
	v := binary.BigEndian.Uint32(m.b[m.off:])
	m.off += 4
	return v
}

func (m *buf) u64() uint64 {
	if m.err != nil || m.off+8 > len(m.b) {
		m.err = errShort
		return 0
	}
	v := binary.BigEndian.Uint64(m.b[m.off:])
	m.off += 8
	return v
}

func (m *buf) i64() int64 { return int64(m.u64()) }

func (m *buf) str() string {
	n := int(m.u32())
	if m.err != nil || n < 0 || m.off+n > len(m.b) {
		m.err = errShort
		return ""
	}
	s := string(m.b[m.off : m.off+n])
	m.off += n
	return s
}

func (m *buf) bytes() []byte {
	n := int(m.u32())
	if m.err != nil || n < 0 || m.off+n > len(m.b) {
		m.err = errShort
		return nil
	}
	p := make([]byte, n)
	copy(p, m.b[m.off:])
	m.off += n
	return p
}

func (m *buf) putAttr(a vfs.Attr) {
	m.putU32(uint32(a.Type))
	m.putU32(uint32(a.Mode))
	m.putU32(uint32(a.UID))
	m.putU32(uint32(a.GID))
	m.putI64(a.Size)
	m.putI64(a.MTime)
	m.putU32(uint32(a.Nlink))
}

func (m *buf) attr() vfs.Attr {
	return vfs.Attr{
		Type:  vfs.VType(m.u32()),
		Mode:  uint16(m.u32()),
		UID:   int(m.u32()),
		GID:   int(m.u32()),
		Size:  m.i64(),
		MTime: m.i64(),
		Nlink: int(m.u32()),
	}
}

// Transport carries one request/response exchange. LocalTransport invokes a
// server directly (deterministic, in-process); ConnTransport speaks frames
// over a net.Conn one at a time; MuxTransport pipelines tagged frames.
type Transport interface {
	RoundTrip(req []byte) ([]byte, error)
}

// IdemTransport is implemented by transports that can exploit knowing a
// request is idempotent (read, stat, readdir, poll): such a request may be
// re-sent after a deadline expiry, because executing it twice on the server
// is harmless. The client passes the flag; the transport decides the policy.
type IdemTransport interface {
	Transport
	RoundTripIdem(req []byte, idempotent bool) ([]byte, error)
}

// idempotentOp reports whether re-executing op on the server is harmless.
func idempotentOp(op uint8) bool {
	switch op {
	case opRead, opStat, opReadDir, opPoll:
		return true
	}
	return false
}

// writeFrame sends one length-prefixed frame in a single Write, so a frame
// costs one syscall on a real connection.
func writeFrame(w io.Writer, p []byte) error {
	buf := make([]byte, 4+len(p))
	binary.BigEndian.PutUint32(buf, uint32(len(p)))
	copy(buf[4:], p)
	_, err := w.Write(buf)
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 1<<24 {
		return nil, fmt.Errorf("rfs: oversized frame (%d bytes)", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}
