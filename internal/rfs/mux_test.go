package rfs

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// fakeMuxServer accepts the handshake on conn and hands tagged requests to
// the script, which decides what (and when) to answer. It gives the tests
// frame-level control the real server never would.
func fakeMuxServer(t *testing.T, conn net.Conn, script func(send func(tag uint32, body []byte), recv func() (uint32, []byte))) {
	t.Helper()
	go func() {
		hello, err := readFrame(conn)
		if err != nil || string(hello) != muxMagic {
			return
		}
		if err := writeFrame(conn, []byte(muxMagic)); err != nil {
			return
		}
		send := func(tag uint32, body []byte) {
			frame := make([]byte, 4+len(body))
			binary.BigEndian.PutUint32(frame, tag)
			copy(frame[4:], body)
			writeFrame(conn, frame)
		}
		recv := func() (uint32, []byte) {
			p, err := readFrame(conn)
			if err != nil || len(p) < 4 {
				return 0, nil
			}
			return binary.BigEndian.Uint32(p), p[4:]
		}
		script(send, recv)
	}()
}

// The demux table routes responses by tag, not arrival order: a server that
// answers in reverse still satisfies each caller with its own response.
func TestMuxResponseReordering(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	fakeMuxServer(t, server, func(send func(uint32, []byte), recv func() (uint32, []byte)) {
		t1, b1 := recv()
		t2, b2 := recv()
		// Answer the second request first, echoing each body back.
		send(t2, b2)
		send(t1, b1)
	})
	mt, err := NewMuxTransport(client)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()

	type result struct {
		req  string
		resp []byte
		err  error
	}
	results := make(chan result, 2)
	for _, req := range []string{"first", "second"} {
		req := req
		go func() {
			resp, err := mt.RoundTrip([]byte(req))
			results <- result{req, resp, err}
		}()
		// Stagger so the wire order of the two requests is deterministic.
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("%s: %v", r.req, r.err)
		}
		if string(r.resp) != r.req {
			t.Fatalf("tag mixup: request %q got response %q", r.req, r.resp)
		}
	}
}

// A deadline expiry surfaces ErrTimeout; the response arriving after it is
// an orphan, dropped without disturbing the next request.
func TestMuxDeadlineAndLateResponse(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	release := make(chan struct{})
	fakeMuxServer(t, server, func(send func(uint32, []byte), recv func() (uint32, []byte)) {
		tag, body := recv()
		<-release // hold the first response past the deadline
		send(tag, body)
		tag2, body2 := recv()
		send(tag2, body2)
	})
	mt, err := NewMuxTransport(client)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	mt.Timeout = 50 * time.Millisecond

	if _, err := mt.RoundTrip([]byte("slow")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline: %v, want ErrTimeout", err)
	}
	close(release)
	resp, err := mt.RoundTrip([]byte("next"))
	if err != nil || string(resp) != "next" {
		t.Fatalf("request after expiry: %q %v", resp, err)
	}
	deadline := time.Now().Add(time.Second)
	for mt.Stats().Orphans == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := mt.Stats().Orphans; got != 1 {
		t.Fatalf("orphaned responses = %d, want 1 (the late one)", got)
	}
}

// Idempotent requests are re-sent after an expiry; non-idempotent ones are
// not.
func TestMuxIdempotentRetry(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	fakeMuxServer(t, server, func(send func(uint32, []byte), recv func() (uint32, []byte)) {
		recv() // swallow the first attempt: its response is "lost"
		tag, body := recv()
		send(tag, body) // the retry gets through
	})
	mt, err := NewMuxTransport(client)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	mt.Timeout = 50 * time.Millisecond
	mt.Retries = 2
	mt.Backoff = time.Millisecond

	resp, err := mt.RoundTripIdem([]byte("idem"), true)
	if err != nil || string(resp) != "idem" {
		t.Fatalf("idempotent retry: %q %v", resp, err)
	}
	if st := mt.Stats(); st.Retried != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 retry after 1 expiry", st)
	}
}

func TestMuxNonIdempotentNotRetried(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	fakeMuxServer(t, server, func(send func(uint32, []byte), recv func() (uint32, []byte)) {
		recv() // never answered
		recv()
	})
	mt, err := NewMuxTransport(client)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	mt.Timeout = 50 * time.Millisecond
	mt.Retries = 3
	mt.Backoff = time.Millisecond

	if _, err := mt.RoundTripIdem([]byte("mutate"), false); !errors.Is(err, ErrTimeout) {
		t.Fatalf("non-idempotent expiry: %v, want ErrTimeout", err)
	}
	if st := mt.Stats(); st.Retried != 0 || st.Sent != 1 {
		t.Fatalf("stats = %+v, want no retries for a non-idempotent request", st)
	}
}

// Close fails in-flight requests and everything after, promptly.
func TestMuxClose(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	fakeMuxServer(t, server, func(send func(uint32, []byte), recv func() (uint32, []byte)) {
		recv() // hold the request, never answering
		recv() // returns when the pipe closes
	})
	mt, err := NewMuxTransport(client)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := mt.RoundTrip([]byte("stuck"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	mt.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("in-flight request survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request hung across Close")
	}
	if _, err := mt.RoundTrip([]byte("after")); err == nil {
		t.Fatal("request after Close succeeded")
	}
	mt.Close() // idempotent
}

// A legacy server answers the handshake frame with a protocol error, which
// the mux constructor must surface, not hang on.
func TestMuxHandshakeAgainstLegacyServer(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go func() {
		// A stop-and-wait server treats the magic as a (garbled) request
		// and answers with an error response.
		if _, err := readFrame(server); err != nil {
			return
		}
		writeFrame(server, []byte{0, 0, 0, byte(errOther)})
	}()
	if _, err := NewMuxTransport(client); err == nil {
		t.Fatal("handshake against legacy server should fail")
	}
}
