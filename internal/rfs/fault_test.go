package rfs_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// The fault matrix: every injected wire failure must end in a clean error
// or a successful retry — never a hang, a tag mixup, or a stranded
// goroutine. Plans are keyed by response ordinal, which is deterministic
// for a sequential client.

// planAt returns a plan injecting kind at exactly the given ordinals.
func planAt(kind rfs.FaultKind, ordinals ...int) func(int) rfs.FaultKind {
	return func(n int) rfs.FaultKind {
		for _, o := range ordinals {
			if n == o {
				return kind
			}
		}
		return rfs.FaultNone
	}
}

// A dropped response to an idempotent request: the deadline fires and the
// retry succeeds.
func TestFaultDropRetriedIdempotent(t *testing.T) {
	defer leakCheck(t)()
	faults := &rfs.Faults{Plan: planAt(rfs.FaultDrop, 0)}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = 100 * time.Millisecond
	mt.Retries = 2
	mt.Backoff = time.Millisecond
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	cl := rfs.NewClient(mt, types.RootCred())
	attr, err := cl.Stat("/tmp/data")
	if err != nil || attr.Size != 7 {
		t.Fatalf("stat through a dropped response: %+v %v", attr, err)
	}
	if st := mt.Stats(); st.Retried < 1 {
		t.Fatalf("stats = %+v: the drop should have forced a retry", st)
	}
	if faults.Injected(rfs.FaultDrop) != 1 {
		t.Fatalf("injected drops = %d", faults.Injected(rfs.FaultDrop))
	}
}

// A dropped response to a write: no retry (the server may have applied it);
// the caller gets ErrTimeout, cleanly.
func TestFaultDropWriteTimesOut(t *testing.T) {
	defer leakCheck(t)()
	// Ordinal 0 is the open's response; 1 is the write's.
	faults := &rfs.Faults{Plan: planAt(rfs.FaultDrop, 1)}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = 100 * time.Millisecond
	mt.Retries = 3
	mt.Backoff = time.Millisecond
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	cl := rfs.NewClient(mt, types.RootCred())
	f, err := cl.Open("/tmp/data", vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite([]byte("x"), 0); !errors.Is(err, rfs.ErrTimeout) {
		t.Fatalf("dropped write response: %v, want ErrTimeout", err)
	}
	if st := mt.Stats(); st.Retried != 0 {
		t.Fatalf("stats = %+v: writes must never be retried", st)
	}
	f.Close()
}

// A short delay within the deadline is only a slow success.
func TestFaultDelayWithinDeadline(t *testing.T) {
	defer leakCheck(t)()
	faults := &rfs.Faults{Plan: planAt(rfs.FaultDelay, 0), Delay: 20 * time.Millisecond}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = 500 * time.Millisecond
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)
	if _, err := rfs.NewClient(mt, types.RootCred()).Stat("/tmp/data"); err != nil {
		t.Fatalf("delayed response within deadline: %v", err)
	}
}

// A delay past the deadline: the retry wins, and the late original is
// dropped as an orphan rather than answering the wrong request.
func TestFaultDelayPastDeadline(t *testing.T) {
	defer leakCheck(t)()
	faults := &rfs.Faults{Plan: planAt(rfs.FaultDelay, 0), Delay: 150 * time.Millisecond}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = 75 * time.Millisecond
	mt.Retries = 3
	mt.Backoff = time.Millisecond
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	attr, err := rfs.NewClient(mt, types.RootCred()).Stat("/tmp/data")
	if err != nil || attr.Size != 7 {
		t.Fatalf("stat with delayed original: %+v %v", attr, err)
	}
	if st := mt.Stats(); st.Retried < 1 || st.Expired < 1 {
		t.Fatalf("stats = %+v, want an expiry and a retry", st)
	}
	deadline := time.Now().Add(time.Second)
	for mt.Stats().Orphans == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if mt.Stats().Orphans < 1 {
		t.Fatal("the late original response was never accounted as an orphan")
	}
}

// A duplicated response: the first copy answers the request, the second is
// dropped by the demux table, and the connection stays usable.
func TestFaultDuplicateResponseDropped(t *testing.T) {
	defer leakCheck(t)()
	faults := &rfs.Faults{Plan: planAt(rfs.FaultDup, 0)}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = time.Second
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	cl := rfs.NewClient(mt, types.RootCred())
	if _, err := cl.Stat("/tmp/data"); err != nil {
		t.Fatalf("stat with duplicated response: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for mt.Stats().Orphans == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := mt.Stats().Orphans; got != 1 {
		t.Fatalf("orphans = %d, want exactly the duplicate", got)
	}
	// The connection is not poisoned.
	if _, err := cl.Stat("/tmp/data"); err != nil {
		t.Fatalf("stat after duplicate: %v", err)
	}
}

// A corrupt frame is detected at the framing layer and poisons the
// connection: the victim and every later request get a prompt, clean error.
func TestFaultCorruptFramePoisonsCleanly(t *testing.T) {
	defer leakCheck(t)()
	faults := &rfs.Faults{Plan: planAt(rfs.FaultCorrupt, 1)}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = 2 * time.Second
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	cl := rfs.NewClient(mt, types.RootCred())
	if _, err := cl.Stat("/tmp/data"); err != nil {
		t.Fatalf("stat before corruption: %v", err)
	}
	start := time.Now()
	if _, err := cl.Stat("/tmp/data"); err == nil {
		t.Fatal("stat answered by a corrupt frame succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("corrupt frame took a timeout to surface; should fail at the framing layer")
	}
	if _, err := cl.Stat("/tmp/data"); err == nil {
		t.Fatal("stat after corruption succeeded on a dead connection")
	}
}

// A mid-stream disconnect: in-flight and subsequent requests all fail
// promptly; concurrent callers are all released.
func TestFaultDisconnectReleasesEveryone(t *testing.T) {
	defer leakCheck(t)()
	faults := &rfs.Faults{Plan: planAt(rfs.FaultDisconnect, 3)}
	s, mt, cleanup := muxSystem(t, faults)
	defer cleanup()
	mt.Timeout = 2 * time.Second
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	var wg sync.WaitGroup
	sawError := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := rfs.NewClient(mt, types.RootCred())
			for i := 0; i < 50; i++ {
				if _, err := cl.Stat("/tmp/data"); err != nil {
					sawError <- err
					return
				}
			}
			sawError <- nil
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("disconnect left callers hanging")
	}
	close(sawError)
	var hits int
	for err := range sawError {
		if err != nil {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("nobody observed the disconnect")
	}
}

// Client-side request faults through FaultTransport: drops read as a
// deadline expiry, corrupt requests get a protocol-level error response,
// duplicates execute harmlessly for idempotent ops.
func TestFaultTransportRequestSide(t *testing.T) {
	defer leakCheck(t)()
	s, mt, cleanup := muxSystem(t, nil)
	defer cleanup()
	mt.Timeout = time.Second
	s.FS.WriteFile("/tmp/data", []byte("payload"), 0o644, 0, 0)

	faults := &rfs.Faults{Plan: func(n int) rfs.FaultKind {
		switch n {
		case 0:
			return rfs.FaultDrop
		case 1:
			return rfs.FaultCorrupt
		case 2:
			return rfs.FaultDup
		}
		return rfs.FaultNone
	}}
	cl := rfs.NewClient(&rfs.FaultTransport{Inner: mt, Faults: faults}, types.RootCred())

	if _, err := cl.Stat("/tmp/data"); !errors.Is(err, rfs.ErrTimeout) {
		t.Fatalf("dropped request: %v, want ErrTimeout", err)
	}
	if _, err := cl.Stat("/tmp/data"); err == nil {
		t.Fatal("corrupted request opcode succeeded")
	}
	attr, err := cl.Stat("/tmp/data") // duplicated: executes twice, answers once
	if err != nil || attr.Size != 7 {
		t.Fatalf("duplicated request: %+v %v", attr, err)
	}
	attr, err = cl.Stat("/tmp/data") // and the wire is still healthy
	if err != nil || attr.Size != 7 {
		t.Fatalf("after faults: %+v %v", attr, err)
	}
}
