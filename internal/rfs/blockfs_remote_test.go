package rfs_test

import (
	"errors"
	"testing"

	"repro"
	"repro/internal/fault"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// End-to-end proof for the codec-level round-trip test: a blockfs failure on
// the remote machine crosses the RFS wire and still answers errors.Is on the
// client side — EIO from an injected journal fault, ENOSPC from a genuinely
// full disk.
func TestRemoteBlockFSErrorsCrossTheWire(t *testing.T) {
	fault.Guard(t)
	s := repro.NewSystem(repro.Options{DiskBlocks: 256})
	defer s.Close()
	srv := rfs.NewServer(s.NS, nil)
	cl := rfs.NewClient(rfs.LocalTransport{S: srv}, types.RootCred())

	// EIO: every journal write on the remote side fails, so the remote
	// create's transaction rolls back and the client must see ErrIO itself,
	// not a stringly errOther.
	fault.Default.Lookup("blockfs.journal").Arm(fault.Spec{Every: 1})
	_, err := cl.Open("/disk/f", vfs.OWrite|vfs.OCreat)
	fault.Default.Lookup("blockfs.journal").Disarm()
	if !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("remote create under journal fault: %v, want errors.Is ErrIO", err)
	}

	// ENOSPC: overfill the small remote disk.
	f, err := cl.Open("/disk/big", vfs.OWrite|vfs.OCreat)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	chunk := make([]byte, 32*1024)
	var werr error
	for off := int64(0); off < 1<<20; off += int64(len(chunk)) {
		if _, werr = f.Pwrite(chunk, off); werr != nil {
			break
		}
	}
	if !errors.Is(werr, vfs.ErrNoSpace) {
		t.Fatalf("overfilling remote disk: %v, want errors.Is ErrNoSpace", werr)
	}
}
