package replay

import (
	"bytes"
	"fmt"
	"os"
	"strconv"

	"repro"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/ktrace"
	"repro/internal/memfs"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// DefaultCheckpointInterval is how often the replayer checkpoints when
// neither ReplayOptions nor REPRO_CKPT says otherwise.
const DefaultCheckpointInterval = 64

// DivergenceError reports the exact point a replay stopped matching the
// recording. EventIndex is the index into the recorded trace stream, or -1
// when the divergence was in an operation result (a spawn pid, an RFS
// response) or in the end-of-run verification.
type DivergenceError struct {
	Step       uint64
	EventIndex int
	Got, Want  string
}

// Error formats the divergence as a got/want diff.
func (e *DivergenceError) Error() string {
	where := fmt.Sprintf("step %d", e.Step)
	if e.EventIndex >= 0 {
		where += fmt.Sprintf(", event %d", e.EventIndex)
	}
	return fmt.Sprintf("replay: diverged at %s:\n  got:  %s\n  want: %s", where, e.Got, e.Want)
}

// FmtEvent renders one trace event for diffs and the dbg event listing.
func FmtEvent(e ktrace.Event) string {
	return fmt.Sprintf("t=%d pid=%d lwp=%d %s what=%d a=%#x b=%#x args=%v",
		e.Time, e.Pid, e.LWP, e.Kind, e.What, e.A, e.B, e.Args)
}

// checkpoint is one whole-system snapshot taken during replay: the kernel,
// the file system backing it, the fault registry mid-plan, the RFS server's
// fd table, and the replay cursors.
type checkpoint struct {
	step       uint64
	opIdx      int
	evIdx      int
	kern       *kernel.Snapshot
	fs         *memfs.FSState
	faults     []fault.SiteState
	rfs        *rfs.ServerState
}

// ReplayOptions tunes a replay.
type ReplayOptions struct {
	// CheckpointInterval is the number of scheduler passes between
	// whole-kernel checkpoints; 0 takes the REPRO_CKPT environment
	// variable, or the default.
	CheckpointInterval uint64
	// NoVerify disables per-event comparison against the recorded stream
	// (the checkpoints and time travel still work; divergence in op
	// results is still caught).
	NoVerify bool
}

// Replayer reconstructs a recorded run. It re-executes the kernel from the
// same boot state, re-applies each recorded host operation at its step
// ordinal, and verifies every emitted trace event against the recording as
// it goes. Checkpoints taken every K passes make Goto cheap: restore the
// nearest one at or before the target and re-execute forward.
type Replayer struct {
	art *Artifact
	sys *repro.System
	srv *rfs.Server

	step     uint64
	opIdx    int
	evIdx    int
	diverged *DivergenceError

	every  uint64
	verify bool
	ckpts  []*checkpoint
}

// CheckpointIntervalFromEnv resolves the checkpoint interval: an explicit
// option wins, then REPRO_CKPT, then the default.
func CheckpointIntervalFromEnv(opt uint64) uint64 {
	if opt > 0 {
		return opt
	}
	if s := os.Getenv("REPRO_CKPT"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return DefaultCheckpointInterval
}

// NewReplayer boots a fresh system from the artifact's configuration and
// positions it at step 0. The global fault registry is reset, exactly as
// the recorder reset it.
func NewReplayer(art *Artifact, opts ...ReplayOptions) *Replayer {
	var o ReplayOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	fault.Default.Reset()
	sys := repro.NewSystem(repro.Options{
		PageSize: art.PageSize, Quantum: art.Quantum, NoInit: art.NoInit, NCPU: 1,
	})
	sys.K.EnableKTraceAll(art.KTCap)
	r := &Replayer{
		art:    art,
		sys:    sys,
		srv:    rfs.NewServer(sys.NS, nil),
		every:  CheckpointIntervalFromEnv(o.CheckpointInterval),
		verify: !o.NoVerify,
	}
	sys.K.KTTap = r.onEvent
	return r
}

// System exposes the replayed system for inspection (dbg reads registers,
// memory and /proc files out of it).
func (r *Replayer) System() *repro.System { return r.sys }

// Artifact returns the recording being replayed.
func (r *Replayer) Artifact() *Artifact { return r.art }

// Step returns the current position: completed scheduler passes.
func (r *Replayer) Step() uint64 { return r.step }

// Steps returns the recorded run length.
func (r *Replayer) Steps() uint64 { return r.art.Steps }

// Diverged returns the first divergence observed, or nil.
func (r *Replayer) Diverged() error {
	if r.diverged == nil {
		return nil
	}
	return r.diverged
}

// Checkpoints returns the step ordinals of the checkpoints taken so far.
func (r *Replayer) Checkpoints() []uint64 {
	out := make([]uint64, len(r.ckpts))
	for i, c := range r.ckpts {
		out[i] = c.step
	}
	return out
}

// onEvent is the tap: compare each emitted event against the recording.
func (r *Replayer) onEvent(e *ktrace.Event) {
	if !r.verify {
		r.evIdx++
		return
	}
	if r.diverged != nil {
		return
	}
	if r.evIdx >= len(r.art.Events) {
		r.diverged = &DivergenceError{
			Step: r.step, EventIndex: r.evIdx,
			Got:  FmtEvent(*e),
			Want: "<end of recorded stream>",
		}
		return
	}
	if want := r.art.Events[r.evIdx]; *e != want {
		r.diverged = &DivergenceError{
			Step: r.step, EventIndex: r.evIdx,
			Got:  FmtEvent(*e),
			Want: FmtEvent(want),
		}
		return
	}
	r.evIdx++
}

func (r *Replayer) opDiverged(got, want string) *DivergenceError {
	d := &DivergenceError{Step: r.step, EventIndex: -1, Got: got, Want: want}
	if r.diverged == nil {
		r.diverged = d
	}
	return r.diverged
}

// applyOp re-executes one recorded host operation.
func (r *Replayer) applyOp(op *Op) error {
	switch op.Kind {
	case OpInstall:
		if err := r.sys.Install(op.Path, string(op.Data), op.Mode, op.UID, op.GID); err != nil {
			return r.opDiverged(fmt.Sprintf("install %s: %v", op.Path, err),
				fmt.Sprintf("install %s: ok", op.Path))
		}
	case OpInstallBSL:
		if err := r.sys.InstallBSL(op.Path, string(op.Data), op.Mode, op.UID, op.GID); err != nil {
			return r.opDiverged(fmt.Sprintf("installbsl %s: %v", op.Path, err),
				fmt.Sprintf("installbsl %s: ok", op.Path))
		}
	case OpWriteFile:
		if err := r.sys.FS.WriteFile(op.Path, op.Data, op.Mode, op.UID, op.GID); err != nil {
			return r.opDiverged(fmt.Sprintf("writefile %s: %v", op.Path, err),
				fmt.Sprintf("writefile %s: ok", op.Path))
		}
	case OpSpawn:
		p, err := r.sys.Spawn(op.Path, op.Args, op.Cred)
		if err != nil {
			return r.opDiverged(fmt.Sprintf("spawn %s: %v", op.Path, err),
				fmt.Sprintf("spawn %s: pid %d", op.Path, op.Pid))
		}
		if p.Pid != op.Pid {
			return r.opDiverged(fmt.Sprintf("spawn %s: pid %d", op.Path, p.Pid),
				fmt.Sprintf("spawn %s: pid %d", op.Path, op.Pid))
		}
	case OpFaults:
		if err := fault.Default.ExecAll(string(op.Data)); err != nil {
			return r.opDiverged(fmt.Sprintf("faults: %v", err), "faults: ok")
		}
	case OpCtl:
		f, err := r.sys.Client(types.RootCred()).Open(
			"/procx/"+procfs.PidName(op.Pid)+"/ctl", vfs.OWrite)
		if err != nil {
			return r.opDiverged(fmt.Sprintf("ctl pid %d: open: %v", op.Pid, err),
				fmt.Sprintf("ctl pid %d: open ok", op.Pid))
		}
		// Write errors are legitimate (the recorder records a Ctl whose
		// batch partially applied); the side effects are what must match,
		// and the event stream checks those.
		f.Write(op.Data)
		f.Close()
	case OpRFS:
		resp := r.srv.Handle(op.Data)
		if !bytes.Equal(resp, op.Resp) {
			return r.opDiverged(fmt.Sprintf("rfs response %x", resp),
				fmt.Sprintf("rfs response %x", op.Resp))
		}
	default:
		return r.opDiverged(fmt.Sprintf("unknown op kind %d", op.Kind), "known op")
	}
	return r.Diverged()
}

// takeCheckpoint snapshots the whole system at the current position.
func (r *Replayer) takeCheckpoint() error {
	kern, err := r.sys.K.Snapshot()
	if err != nil {
		return err
	}
	r.ckpts = append(r.ckpts, &checkpoint{
		step:   r.step,
		opIdx:  r.opIdx,
		evIdx:  r.evIdx,
		kern:   kern,
		fs:     r.sys.FS.SaveState(),
		faults: fault.Default.SaveState(),
		rfs:    r.srv.SaveState(),
	})
	return nil
}

// restore rewinds the system to a checkpoint. The checkpoint stays
// reusable: reverse-step restores the same one over and over.
func (r *Replayer) restore(c *checkpoint) error {
	if err := r.sys.K.Restore(c.kern); err != nil {
		return err
	}
	r.sys.FS.RestoreState(c.fs)
	fault.Default.LoadState(c.faults)
	r.srv.LoadState(c.rfs)
	r.step = c.step
	r.opIdx = c.opIdx
	r.evIdx = c.evIdx
	r.diverged = nil
	return nil
}

// StepOnce advances the replay one scheduler pass: checkpoint if due, apply
// the host operations recorded at this ordinal, run the pass, verify.
func (r *Replayer) StepOnce() error {
	if r.step >= r.art.Steps {
		return fmt.Errorf("replay: already at end (step %d)", r.step)
	}
	if err := r.Diverged(); err != nil {
		return err
	}
	if r.step%r.every == 0 {
		if len(r.ckpts) == 0 || r.ckpts[len(r.ckpts)-1].step < r.step {
			if err := r.takeCheckpoint(); err != nil {
				return err
			}
		}
	}
	for r.opIdx < len(r.art.Ops) && r.art.Ops[r.opIdx].Step == r.step {
		op := &r.art.Ops[r.opIdx]
		r.opIdx++
		if err := r.applyOp(op); err != nil {
			return err
		}
	}
	r.sys.Step()
	r.step++
	return r.Diverged()
}

// RunToEnd replays to the recorded end and verifies the final state:
// trailing operations applied, every recorded event seen, counters and
// process table identical.
func (r *Replayer) RunToEnd() error {
	for r.step < r.art.Steps {
		if err := r.StepOnce(); err != nil {
			return err
		}
	}
	// Operations recorded after the last pass.
	for r.opIdx < len(r.art.Ops) && r.art.Ops[r.opIdx].Step == r.step {
		op := &r.art.Ops[r.opIdx]
		r.opIdx++
		if err := r.applyOp(op); err != nil {
			return err
		}
	}
	return r.VerifyFinal()
}

// VerifyFinal checks the end-of-run oracles. It is separate from RunToEnd
// so Goto-heavy sessions can re-verify after wandering.
func (r *Replayer) VerifyFinal() error {
	if err := r.Diverged(); err != nil {
		return err
	}
	if r.verify && r.evIdx != len(r.art.Events) {
		return r.opDiverged(
			fmt.Sprintf("%d events emitted", r.evIdx),
			fmt.Sprintf("%d events recorded", len(r.art.Events)))
	}
	if got := r.sys.K.KTraceStats(); got != r.art.Stats {
		return r.opDiverged(
			fmt.Sprintf("stats emitted=%d dropped=%d", got.Emitted, got.Dropped),
			fmt.Sprintf("stats emitted=%d dropped=%d", r.art.Stats.Emitted, r.art.Stats.Dropped))
	}
	if got := EncodeTable(r.sys.K); !bytes.Equal(got, r.art.Table) {
		return r.opDiverged("final table:\n"+string(got), "final table:\n"+string(r.art.Table))
	}
	return nil
}

// Goto positions the replay at exactly target completed passes: backward
// via the nearest checkpoint at or before the target, forward by plain
// re-execution. Checkpoints accumulate as the replay advances, so travel
// gets cheaper the more ground has been covered.
func (r *Replayer) Goto(target uint64) error {
	if target > r.art.Steps {
		return fmt.Errorf("replay: step %d beyond recorded end %d", target, r.art.Steps)
	}
	if target < r.step {
		var best *checkpoint
		for _, c := range r.ckpts {
			if c.step <= target && (best == nil || c.step > best.step) {
				best = c
			}
		}
		if best == nil {
			return fmt.Errorf("replay: no checkpoint at or before step %d", target)
		}
		if err := r.restore(best); err != nil {
			return err
		}
	}
	for r.step < target {
		if err := r.StepOnce(); err != nil {
			return err
		}
	}
	return nil
}
