package replay

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ktrace"
	"repro/internal/types"
)

// randomArtifact builds an arbitrary (not necessarily replayable) artifact
// from a seeded source: the codec must round-trip anything the recorder
// could produce, not just the happy shapes.
func randomArtifact(rng *rand.Rand) *Artifact {
	a := &Artifact{
		PageSize:   rng.Intn(3) * 4096,
		Quantum:    rng.Intn(200),
		KTCap:      1 + rng.Intn(1<<16),
		NoInit:     rng.Intn(2) == 0,
		StartClock: rng.Int63n(1000),
		Steps:      uint64(rng.Intn(10000)),
	}
	kinds := []OpKind{OpInstall, OpInstallBSL, OpWriteFile, OpSpawn, OpFaults, OpCtl, OpRFS}
	randBytes := func(n int) []byte {
		b := make([]byte, rng.Intn(n))
		rng.Read(b)
		if len(b) == 0 {
			return nil // the codec canonicalizes empty to nil
		}
		return b
	}
	for i := rng.Intn(8); i > 0; i-- {
		op := Op{
			Step: uint64(rng.Intn(1000)),
			Kind: kinds[rng.Intn(len(kinds))],
			Path: strings.Repeat("p", rng.Intn(10)),
			Data: randBytes(64),
			Resp: randBytes(32),
			Mode: uint16(rng.Intn(1 << 16)),
			UID:  rng.Intn(1000) - 1,
			GID:  rng.Intn(1000) - 1,
			Pid:  rng.Intn(1 << 15),
			Cred: types.Cred{RUID: rng.Intn(100), EUID: rng.Intn(100), SUID: rng.Intn(100),
				RGID: rng.Intn(100), EGID: rng.Intn(100), SGID: rng.Intn(100)},
		}
		if rng.Intn(2) == 0 {
			op.Cred.Groups = []int{rng.Intn(10), rng.Intn(10)}
		}
		for j := rng.Intn(3); j > 0; j-- {
			op.Args = append(op.Args, strings.Repeat("a", rng.Intn(6)))
		}
		a.Ops = append(a.Ops, op)
	}
	for i := rng.Intn(16); i > 0; i-- {
		a.Events = append(a.Events, ktrace.Event{
			Time: rng.Int63n(1 << 30), Pid: int32(rng.Intn(100)), LWP: int32(rng.Intn(4)),
			Kind: ktrace.Kind(1 + rng.Intn(9)), What: int32(rng.Intn(64)),
			A: rng.Uint32(), B: rng.Uint32(),
			Args: [6]uint32{rng.Uint32(), rng.Uint32()},
		})
		a.EvSteps = append(a.EvSteps, uint64(rng.Intn(10000)))
	}
	a.Stats.Emitted = uint64(len(a.Events))
	a.Stats.Dropped = uint64(rng.Intn(10))
	for i := 0; i < 5; i++ {
		a.Stats.PerSys[rng.Intn(ktrace.MaxSysHist)] = uint64(rng.Intn(100))
	}
	a.Table = randBytes(256)
	return a
}

// TestArtifactRoundTrip is the codec property test: decode(encode(a)) == a
// across many random artifacts.
func TestArtifactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1991))
	for i := 0; i < 200; i++ {
		a := randomArtifact(rng)
		got, err := Unmarshal(a.Marshal())
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !reflect.DeepEqual(a, got) {
			t.Fatalf("iteration %d: round trip mismatch:\n%#v\nvs\n%#v", i, a, got)
		}
	}
}

// TestArtifactRejects pins the error behavior on bad inputs: truncation,
// corruption and version skew all fail with clear, distinct errors — never
// a panic, never a silently wrong artifact.
func TestArtifactRejects(t *testing.T) {
	good := randomArtifact(rand.New(rand.NewSource(7))).Marshal()

	if _, err := Unmarshal(nil); err != ErrTruncated {
		t.Errorf("empty input: %v, want ErrTruncated", err)
	}
	if _, err := Unmarshal([]byte("NOTANART0000")); err != ErrBadMagic {
		t.Errorf("bad magic: %v, want ErrBadMagic", err)
	}

	// Version skew: bump the version word.
	skew := append([]byte(nil), good...)
	skew[len(Magic)+3]++
	if _, err := Unmarshal(skew); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew: %v, want version error", err)
	}

	// Every proper prefix must be rejected, not misread.
	for cut := 0; cut < len(good)-1; cut += 7 {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// A section length pointing past the end is corruption, not a crash.
	bad := append([]byte(nil), good...)
	// The first section header sits right after magic+version; blow up its
	// length field.
	bad[len(Magic)+4+4] = 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("oversized section length accepted")
	}
}

// FuzzReplayDecode throws arbitrary bytes at the decoder; it must reject or
// accept without panicking, and anything accepted must re-encode and
// re-decode to the same artifact.
func FuzzReplayDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(randomArtifact(rng).Marshal())
	f.Add(randomArtifact(rng).Marshal())
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := Unmarshal(b)
		if err != nil {
			return
		}
		again, err := Unmarshal(a.Marshal())
		if err != nil {
			t.Fatalf("re-decode of accepted artifact failed: %v", err)
		}
		if !reflect.DeepEqual(a, again) {
			t.Fatal("accepted artifact is not canonical")
		}
	})
}
