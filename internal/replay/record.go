package replay

import (
	"errors"
	"fmt"

	"repro"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/ktrace"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Options tunes a recording.
type Options struct {
	PageSize int
	Quantum  int
	KTCap    int // kernel-wide trace ring capacity (default 1<<20)
	NoInit   bool
}

// Recorder drives a freshly booted system and captures everything
// nondeterministic about the run. The driving program performs all host
// operations through the Recorder's methods — that is the recording
// surface; anything done behind its back is invisible to the artifact and
// will diverge on replay. The kernel's own execution needs no capturing: at
// NCPU=1 it is a pure function of the boot state and the host operations.
type Recorder struct {
	sys      *repro.System
	srv      *rfs.Server
	art      *Artifact
	steps    uint64
	finished bool
	chunks   []*evChunk
}

// evChunk is one block of the recorder's event log. Events land here
// instead of in a flat slice so the tap never pays for growth copies on the
// hot path; Finish flattens the chunks into the artifact once.
type evChunk struct {
	ev   [evChunkSize]ktrace.Event
	step [evChunkSize]uint64
	n    int
}

const evChunkSize = 4096

// ErrFinished reports use of a recorder after Finish.
var ErrFinished = errors.New("replay: recorder already finished")

// NewRecorder boots a deterministic system with tracing enabled and begins
// recording. The global fault registry is reset: a recording starts from a
// clean slate, and every arm after this point goes through ArmFaults.
func NewRecorder(o Options) *Recorder {
	if o.KTCap <= 0 {
		o.KTCap = 1 << 20
	}
	fault.Default.Reset()
	sys := repro.NewSystem(repro.Options{
		PageSize: o.PageSize, Quantum: o.Quantum, NoInit: o.NoInit, NCPU: 1,
	})
	sys.K.EnableKTraceAll(o.KTCap)
	r := &Recorder{
		sys: sys,
		art: &Artifact{
			PageSize:   o.PageSize,
			Quantum:    o.Quantum,
			KTCap:      sys.K.KT.Cap(),
			NoInit:     o.NoInit,
			StartClock: sys.K.Now(),
		},
	}
	sys.K.KTTap = func(e *ktrace.Event) {
		c := r.lastChunk()
		c.ev[c.n] = *e
		c.step[c.n] = r.steps
		c.n++
	}
	return r
}

func (r *Recorder) lastChunk() *evChunk {
	if n := len(r.chunks); n > 0 && r.chunks[n-1].n < evChunkSize {
		return r.chunks[n-1]
	}
	c := &evChunk{}
	r.chunks = append(r.chunks, c)
	return c
}

// System exposes the recorded system for read-only inspection (reading
// /proc files, checking process state). Mutating it other than through the
// Recorder's methods makes the recording unreplayable.
func (r *Recorder) System() *repro.System { return r.sys }

// Steps returns the number of scheduler passes recorded so far.
func (r *Recorder) Steps() uint64 { return r.steps }

func (r *Recorder) op(op Op) {
	op.Step = r.steps
	r.art.Ops = append(r.art.Ops, op)
}

// Install assembles src and installs it at path, recording the source.
func (r *Recorder) Install(path, src string, mode uint16, uid, gid int) error {
	if err := r.sys.Install(path, src, mode, uid, gid); err != nil {
		return err
	}
	r.op(Op{Kind: OpInstall, Path: path, Data: []byte(src), Mode: mode, UID: uid, GID: gid})
	return nil
}

// InstallBSL compiles bsl source and installs it at path.
func (r *Recorder) InstallBSL(path, src string, mode uint16, uid, gid int) error {
	if err := r.sys.InstallBSL(path, src, mode, uid, gid); err != nil {
		return err
	}
	r.op(Op{Kind: OpInstallBSL, Path: path, Data: []byte(src), Mode: mode, UID: uid, GID: gid})
	return nil
}

// WriteFile writes data at path verbatim.
func (r *Recorder) WriteFile(path string, data []byte, mode uint16, uid, gid int) error {
	if err := r.sys.FS.WriteFile(path, data, mode, uid, gid); err != nil {
		return err
	}
	r.op(Op{Kind: OpWriteFile, Path: path, Data: append([]byte(nil), data...), Mode: mode, UID: uid, GID: gid})
	return nil
}

// Spawn starts a program as a child of init, recording the resulting pid so
// replay can verify it lands on the same one.
func (r *Recorder) Spawn(path string, args []string, cred types.Cred) (*kernel.Proc, error) {
	p, err := r.sys.Spawn(path, args, cred)
	if err != nil {
		return nil, err
	}
	r.op(Op{Kind: OpSpawn, Path: path, Args: append([]string(nil), args...), Cred: cred, Pid: p.Pid})
	return p, nil
}

// ArmFaults applies a fault-plan command script (the /procx/faults
// language) to the global registry.
func (r *Recorder) ArmFaults(text string) error {
	if err := fault.Default.ExecAll(text); err != nil {
		return err
	}
	r.op(Op{Kind: OpFaults, Data: []byte(text)})
	return nil
}

// Ctl writes one control message to /procx/<pid>/ctl as root, open-act-close
// so no host handle outlives the operation. The op is recorded whenever the
// open succeeds: a failed batch may still have applied a prefix of itself,
// and replay must repeat exactly that.
func (r *Recorder) Ctl(pid int, msg []byte) error {
	f, err := r.sys.Client(types.RootCred()).Open(
		"/procx/"+procfs.PidName(pid)+"/ctl", vfs.OWrite)
	if err != nil {
		return err
	}
	r.op(Op{Kind: OpCtl, Pid: pid, Data: append([]byte(nil), msg...)})
	_, werr := f.Write(msg)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Server returns the RFS server for this recording, creating it on first
// use. Its Tap records every (request, response) pair server-side — past
// the transport, so wire faults never corrupt the recorded stream.
func (r *Recorder) Server() *rfs.Server {
	if r.srv == nil {
		r.srv = rfs.NewServer(r.sys.NS, nil)
		r.srv.Tap = func(req, resp []byte) {
			r.op(Op{Kind: OpRFS,
				Data: append([]byte(nil), req...),
				Resp: append([]byte(nil), resp...)})
		}
	}
	return r.srv
}

// Step advances the simulation one scheduler pass.
func (r *Recorder) Step() bool {
	ran := r.sys.Step()
	r.steps++
	return ran
}

// Run drives the scheduler for at most n passes, stopping early when the
// system goes idle, exactly like kernel.Run. The idle-detecting pass still
// counts: it advanced the clock.
func (r *Recorder) Run(n int) int {
	for i := 0; i < n; i++ {
		if !r.Step() {
			return i
		}
	}
	return n
}

// RunUntil mirrors kernel.RunUntil through the recording step counter.
func (r *Recorder) RunUntil(cond func() bool, maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if cond() {
			return nil
		}
		if !r.Step() {
			if cond() {
				return nil
			}
			if !r.sys.K.TimersPending() {
				return kernel.ErrDeadlock
			}
		}
	}
	if cond() {
		return nil
	}
	return fmt.Errorf("replay: RunUntil: condition not met in %d steps", maxSteps)
}

// WaitExit drives the scheduler until p exits.
func (r *Recorder) WaitExit(p *kernel.Proc) (int, error) {
	if err := r.RunUntil(func() bool { return !p.Alive() }, 10_000_000); err != nil {
		return 0, err
	}
	return p.ExitStatus, nil
}

// Finish seals the recording: the final counters, process table and step
// count go into the artifact, and the tap is detached. The recorder is dead
// afterwards; the system remains usable un-recorded.
func (r *Recorder) Finish() (*Artifact, error) {
	if r.finished {
		return nil, ErrFinished
	}
	r.finished = true
	r.sys.K.KTTap = nil
	if r.srv != nil {
		r.srv.Tap = nil
	}
	total := 0
	for _, c := range r.chunks {
		total += c.n
	}
	r.art.Events = make([]ktrace.Event, 0, total)
	r.art.EvSteps = make([]uint64, 0, total)
	for _, c := range r.chunks {
		r.art.Events = append(r.art.Events, c.ev[:c.n]...)
		r.art.EvSteps = append(r.art.EvSteps, c.step[:c.n]...)
	}
	r.chunks = nil
	r.art.Steps = r.steps
	r.art.Stats = r.sys.K.KTraceStats()
	r.art.Table = EncodeTable(r.sys.K)
	return r.art, nil
}

// EncodeTable renders the process table deterministically, one line per
// process in table order: the identity and outcome fields a replay must
// land on exactly.
func EncodeTable(k *kernel.Kernel) []byte {
	var b []byte
	for _, p := range k.Procs() {
		b = append(b, fmt.Sprintf("%d %d %q state=%d exit=%d vsz=%d sys=%d flt=%d sig=%d fork=%d\n",
			p.Pid, p.PPid(), p.Comm, p.State(), p.ExitStatus, p.VirtSize(),
			p.Usage.Syscalls, p.Usage.Faults, p.Usage.Signals, p.Usage.ForkedKids)...)
	}
	return b
}
