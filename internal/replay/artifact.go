// Package replay is the record/replay subsystem: it captures one
// deterministic run of a simulated system — the boot configuration plus the
// complete stream of nondeterministic inputs (host-side installs, spawns,
// fault-plan arms, /procx control writes, RFS requests), keyed by the step
// ordinal at which each arrived — into a self-describing artifact, and
// reconstructs a bit-identical run from it. The kernel itself is
// deterministic at NCPU=1; everything that is not the kernel enters through
// a narrow set of host operations, and those are exactly what the artifact
// records.
//
// Replays verify themselves as they go: every trace event the re-execution
// emits is compared against the recorded stream, so a divergence is caught
// at the emitting step, not at the end. Whole-kernel checkpoints taken every
// K steps during replay make arbitrary rewinds cheap — restore the nearest
// checkpoint at or before the target and re-execute forward — which is what
// the time-travel commands in cmd/dbg are built on.
package replay

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/ktrace"
	"repro/internal/types"
)

// Magic opens every artifact file.
const Magic = "REPROREC"

// Version is the artifact format version this package writes. Readers
// reject any other major version outright: a replay against a
// misinterpreted input stream would "diverge" for codec reasons, which is
// worse than an error.
const Version = 1

// OpKind classifies one recorded host operation.
type OpKind uint8

// The host-operation vocabulary. Everything a driving program can do to a
// recorded system goes through one of these.
const (
	OpInstall    OpKind = 1 // assemble Data (source) and install at Path
	OpInstallBSL OpKind = 2 // compile Data (bsl source) and install at Path
	OpWriteFile  OpKind = 3 // write Data at Path verbatim
	OpSpawn      OpKind = 4 // spawn Path with Args under Cred; Pid is the recorded result
	OpFaults     OpKind = 5 // apply Data as a fault-plan command script
	OpCtl        OpKind = 6 // write Data to /procx/<Pid>/ctl as root (open-act-close)
	OpRFS        OpKind = 7 // serve raw request Data; Resp is the recorded response
)

var opNames = map[OpKind]string{
	OpInstall: "install", OpInstallBSL: "installbsl", OpWriteFile: "writefile",
	OpSpawn: "spawn", OpFaults: "faults", OpCtl: "ctl", OpRFS: "rfs",
}

// String names the kind.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op#%d", uint8(k))
}

// Op is one recorded host operation. Step is the number of completed
// scheduler passes when the operation ran; replay applies it at the same
// ordinal, before the pass that follows it. Unused fields are zero.
type Op struct {
	Step uint64
	Kind OpKind

	Path string
	Data []byte
	Resp []byte // OpRFS: the recorded response
	Args []string
	Mode uint16
	UID  int
	GID  int
	Cred types.Cred
	Pid  int // OpSpawn: recorded result; OpCtl: target
}

// Artifact is one recorded run: the boot configuration, the ordered host
// operations, the full trace stream the run emitted (with, per event, the
// step ordinal during which it fired), and the final counters and process
// table the replayer verifies against.
type Artifact struct {
	PageSize   int
	Quantum    int
	KTCap      int // kernel-wide trace ring capacity
	NoInit     bool
	StartClock int64  // simulated clock when recording began
	Steps      uint64 // total scheduler passes recorded

	Ops     []Op
	Events  []ktrace.Event
	EvSteps []uint64 // per-event: completed passes when it fired

	Stats ktrace.Stats // final tracing counters
	Table []byte       // final process-table dump (EncodeTable)
}

// Section tags. Unknown tags are skipped on read, so later versions can add
// sections without breaking this reader.
const (
	secHeader = 1
	secOps    = 2
	secEvents = 3
	secFinal  = 4
)

// Codec errors.
var (
	ErrBadMagic  = errors.New("replay: not a replay artifact (bad magic)")
	ErrTruncated = errors.New("replay: truncated artifact")
)

// wbuf is the artifact writer: append-only big-endian primitives.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = append(w.b, byte(v>>8), byte(v)) }
func (w *wbuf) u32(v uint32) {
	w.b = append(w.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (w *wbuf) u64(v uint64) { w.u32(uint32(v >> 32)); w.u32(uint32(v)) }
func (w *wbuf) i32(v int)    { w.u32(uint32(int32(v))) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }
func (w *wbuf) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *wbuf) str(s string) { w.bytes([]byte(s)) }
func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// rbuf is the artifact reader: sequential big-endian primitives with sticky
// error handling, so decoders read straight through and check once.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}
func (r *rbuf) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}
func (r *rbuf) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := uint16(r.b[0])<<8 | uint16(r.b[1])
	r.b = r.b[2:]
	return v
}
func (r *rbuf) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := uint32(r.b[0])<<24 | uint32(r.b[1])<<16 | uint32(r.b[2])<<8 | uint32(r.b[3])
	r.b = r.b[4:]
	return v
}
func (r *rbuf) u64() uint64 { return uint64(r.u32())<<32 | uint64(r.u32()) }
func (r *rbuf) i32() int    { return int(int32(r.u32())) }
func (r *rbuf) i64() int64  { return int64(r.u64()) }
func (r *rbuf) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return v
}
func (r *rbuf) str() string { return string(r.bytes()) }
func (r *rbuf) bool() bool  { return r.u8() != 0 }

// Marshal serializes the artifact.
func (a *Artifact) Marshal() []byte {
	w := &wbuf{}
	w.b = append(w.b, Magic...)
	w.u32(Version)

	section(w, secHeader, func(w *wbuf) {
		w.i32(a.PageSize)
		w.i32(a.Quantum)
		w.i32(a.KTCap)
		w.bool(a.NoInit)
		w.i64(a.StartClock)
		w.u64(a.Steps)
	})
	section(w, secOps, func(w *wbuf) {
		w.u32(uint32(len(a.Ops)))
		for i := range a.Ops {
			op := &a.Ops[i]
			w.u64(op.Step)
			w.u8(uint8(op.Kind))
			w.str(op.Path)
			w.bytes(op.Data)
			w.bytes(op.Resp)
			w.u32(uint32(len(op.Args)))
			for _, s := range op.Args {
				w.str(s)
			}
			w.u16(op.Mode)
			w.i32(op.UID)
			w.i32(op.GID)
			encodeCred(w, op.Cred)
			w.i32(op.Pid)
		}
	})
	section(w, secEvents, func(w *wbuf) {
		w.u64(uint64(len(a.Events)))
		for i, e := range a.Events {
			w.u64(a.EvSteps[i])
			w.b = ktrace.AppendEncode(w.b, e)
		}
	})
	section(w, secFinal, func(w *wbuf) {
		w.u64(a.Stats.Emitted)
		w.u64(a.Stats.Dropped)
		var nz uint32
		for _, c := range a.Stats.PerSys {
			if c != 0 {
				nz++
			}
		}
		w.u32(nz)
		for sys, c := range a.Stats.PerSys {
			if c != 0 {
				w.u32(uint32(sys))
				w.u64(c)
			}
		}
		w.bytes(a.Table)
	})
	return w.b
}

// section writes one tagged, length-prefixed section.
func section(w *wbuf, tag uint32, body func(*wbuf)) {
	w.u32(tag)
	lenAt := len(w.b)
	w.u64(0) // patched below
	body(w)
	n := uint64(len(w.b) - lenAt - 8)
	for i := 0; i < 8; i++ {
		w.b[lenAt+i] = byte(n >> (56 - 8*i))
	}
}

// Unmarshal parses an artifact, rejecting truncation, corruption and
// version skew with distinct errors.
func Unmarshal(b []byte) (*Artifact, error) {
	if len(b) < len(Magic)+4 {
		return nil, ErrTruncated
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	r := &rbuf{b: b[len(Magic):]}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("replay: artifact version %d unsupported (this build reads version %d)", v, Version)
	}
	a := &Artifact{}
	var haveHeader, haveOps, haveEvents, haveFinal bool
	for len(r.b) > 0 && r.err == nil {
		tag := r.u32()
		n := r.u64()
		if r.err != nil || n > uint64(len(r.b)) {
			return nil, ErrTruncated
		}
		body := &rbuf{b: r.b[:n]}
		r.b = r.b[n:]
		switch tag {
		case secHeader:
			a.PageSize = body.i32()
			a.Quantum = body.i32()
			a.KTCap = body.i32()
			a.NoInit = body.bool()
			a.StartClock = body.i64()
			a.Steps = body.u64()
			haveHeader = true
		case secOps:
			cnt := int(body.u32())
			if body.err == nil && cnt > len(body.b) {
				return nil, fmt.Errorf("replay: corrupt artifact: %d ops in %d-byte section", cnt, len(body.b))
			}
			for i := 0; i < cnt && body.err == nil; i++ {
				var op Op
				op.Step = body.u64()
				op.Kind = OpKind(body.u8())
				op.Path = body.str()
				op.Data = body.bytes()
				op.Resp = body.bytes()
				na := int(body.u32())
				if body.err == nil && na > len(body.b) {
					return nil, fmt.Errorf("replay: corrupt artifact: %d spawn args in %d-byte section", na, len(body.b))
				}
				for j := 0; j < na && body.err == nil; j++ {
					op.Args = append(op.Args, body.str())
				}
				op.Mode = body.u16()
				op.UID = body.i32()
				op.GID = body.i32()
				op.Cred = decodeCred(body)
				op.Pid = body.i32()
				if body.err == nil {
					if _, ok := opNames[op.Kind]; !ok {
						return nil, fmt.Errorf("replay: corrupt artifact: unknown op kind %d", uint8(op.Kind))
					}
					a.Ops = append(a.Ops, op)
				}
			}
			haveOps = true
		case secEvents:
			cnt := body.u64()
			if body.err == nil && cnt > uint64(len(body.b))/(8+ktrace.EventSize) {
				return nil, fmt.Errorf("replay: corrupt artifact: %d events in %d-byte section", cnt, len(body.b))
			}
			for i := uint64(0); i < cnt && body.err == nil; i++ {
				step := body.u64()
				if body.err != nil || len(body.b) < ktrace.EventSize {
					body.fail()
					break
				}
				e, err := ktrace.DecodeEvent(body.b[:ktrace.EventSize])
				if err != nil {
					return nil, fmt.Errorf("replay: corrupt artifact: event %d: %v", i, err)
				}
				body.b = body.b[ktrace.EventSize:]
				a.Events = append(a.Events, e)
				a.EvSteps = append(a.EvSteps, step)
			}
			haveEvents = true
		case secFinal:
			a.Stats.Emitted = body.u64()
			a.Stats.Dropped = body.u64()
			nz := int(body.u32())
			if body.err == nil && nz > len(body.b) {
				return nil, fmt.Errorf("replay: corrupt artifact: %d histogram entries in %d-byte section", nz, len(body.b))
			}
			for i := 0; i < nz && body.err == nil; i++ {
				sys := body.u32()
				c := body.u64()
				if body.err == nil {
					if sys >= ktrace.MaxSysHist {
						return nil, fmt.Errorf("replay: corrupt artifact: syscall %d out of histogram range", sys)
					}
					a.Stats.PerSys[sys] = c
				}
			}
			a.Table = body.bytes()
			haveFinal = true
		default:
			// An unknown section from a future minor revision: skip it.
		}
		if body.err != nil {
			return nil, body.err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if !haveHeader || !haveOps || !haveEvents || !haveFinal {
		return nil, fmt.Errorf("replay: incomplete artifact (header=%v ops=%v events=%v final=%v)",
			haveHeader, haveOps, haveEvents, haveFinal)
	}
	if len(a.Events) != len(a.EvSteps) {
		return nil, errors.New("replay: corrupt artifact: event/step count mismatch")
	}
	return a, nil
}

func encodeCred(w *wbuf, c types.Cred) {
	w.i32(c.RUID)
	w.i32(c.EUID)
	w.i32(c.SUID)
	w.i32(c.RGID)
	w.i32(c.EGID)
	w.i32(c.SGID)
	w.u32(uint32(len(c.Groups)))
	for _, g := range c.Groups {
		w.i32(g)
	}
}

func decodeCred(r *rbuf) types.Cred {
	c := types.Cred{
		RUID: r.i32(), EUID: r.i32(), SUID: r.i32(),
		RGID: r.i32(), EGID: r.i32(), SGID: r.i32(),
	}
	n := int(r.u32())
	if r.err != nil || n > len(r.b) {
		r.fail()
		return c
	}
	for i := 0; i < n; i++ {
		c.Groups = append(c.Groups, r.i32())
	}
	return c
}

// WriteFile stores the artifact at path.
func (a *Artifact) WriteFile(path string) error {
	return os.WriteFile(path, a.Marshal(), 0o644)
}

// ReadFile loads an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(b)
}
