package replay

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/ktrace"
	"strconv"
	"strings"

	"repro/internal/procfs2"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// famProg is the family workload: fork twice, one child sleeps and exits,
// the other dies on a division fault, the parent reaps both — every event
// kind the trace knows, in one program.
const famProg = `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_sleep	; first child naps then exits
	movi r1, 40
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_fork	; second child crashes
	syscall
	cmpi r0, 0
	jne reap
	movi r1, 1
	movi r2, 0
	div r1, r2
reap:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`

// recordStorm records the canonical soak: two families under an armed
// fault plan, a control-message kill, and a handful of RFS operations.
// faultPlan parameterizes the arm so tests can record near-identical runs
// that differ in exactly one plan ordinal; "PID" in the plan is replaced by
// the first family's pid, scoping the storm so the second family survives
// to receive the control message. The second family is spawned twenty
// passes in so its events land well past the first checkpoint interval —
// reverse motion toward them has to cross a checkpoint boundary.
func recordStorm(t *testing.T, faultPlan string) *Artifact {
	t.Helper()
	rec := NewRecorder(Options{})
	if err := rec.Install("/bin/family", famProg, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	var procs []*kernel.Proc
	p0, err := rec.Spawn("/bin/family", []string{"family"}, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	procs = append(procs, p0)
	if faultPlan != "" {
		plan := strings.ReplaceAll(faultPlan, "PID", strconv.Itoa(p0.Pid))
		if err := rec.ArmFaults(plan); err != nil {
			t.Fatal(err)
		}
	}
	// Unconditional passes: Run would stop at the first idle pass even with
	// the sleeper's timer pending, and the recording needs enough depth for
	// the checkpoint machinery to matter.
	for i := 0; i < 20; i++ {
		rec.Step()
	}
	p1, err := rec.Spawn("/bin/family", []string{"family"}, types.UserCred(101, 10))
	if err != nil {
		t.Fatal(err)
	}
	procs = append(procs, p1)
	for i := 0; i < 3; i++ {
		rec.Step()
	}

	// A host-side control op mid-run: post SIGUSR1 at the second family.
	msg := (&procfs2.CtlBuf{}).Kill(types.SIGUSR1).Bytes()
	if err := rec.Ctl(p1.Pid, msg); err != nil {
		t.Fatal(err)
	}

	// Remote operations through the RFS server: a stat, a remote write, a
	// remote read-back.
	cl := rfs.NewClient(rfs.LocalTransport{S: rec.Server()}, types.RootCred())
	if _, err := cl.Stat("/bin/family"); err != nil {
		t.Fatal(err)
	}
	wf, err := cl.Open("/tmp/remote", vfs.OWrite|vfs.OCreat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte("written over rfs")); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	rf, err := cl.Open("/tmp/remote", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if n, _ := rf.Read(buf); string(buf[:n]) != "written over rfs" {
		t.Fatalf("rfs read-back: %q", buf[:n])
	}
	rf.Close()

	for i, p := range procs {
		if _, err := rec.WaitExit(p); err != nil {
			t.Fatalf("family %d stuck: %v", i, err)
		}
	}
	// Drain the sleepers: the 40-tick naps outlive their parents, and only
	// unconditional stepping rides the clock through an otherwise-idle
	// system until the timers fire.
	for i := 0; i < 80; i++ {
		rec.Step()
	}
	art, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if art.Steps == 0 || len(art.Events) < 50 {
		t.Fatalf("thin recording: %d steps, %d events", art.Steps, len(art.Events))
	}
	return art
}

const stormPlan = "mem.cow nth=1 pid=PID\nkernel.fork nth=2 pid=PID"

// TestRecordReplayBitIdentical is the tentpole end-to-end: record the soak
// (faults, control ops, RFS traffic), round-trip the artifact through the
// codec, replay it, and demand the replay verify bit-identical — every
// event, the counters, the final process table.
func TestRecordReplayBitIdentical(t *testing.T) {
	art := recordStorm(t, stormPlan)

	// Through the file, as dbg would load it.
	path := filepath.Join(t.TempDir(), "storm.rec")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, loaded) {
		t.Fatal("artifact did not survive the file round trip")
	}

	rp := NewReplayer(loaded)
	if err := rp.RunToEnd(); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if rp.Step() != art.Steps {
		t.Fatalf("replay ended at step %d, want %d", rp.Step(), art.Steps)
	}
}

// TestReplayDetectsEventMutation flips one bit of one recorded event and
// demands the replay report a divergence at exactly that event and step.
func TestReplayDetectsEventMutation(t *testing.T) {
	art := recordStorm(t, "")
	k := len(art.Events) / 2
	art.Events[k].A ^= 1

	err := NewReplayer(art).RunToEnd()
	var d *DivergenceError
	if !errors.As(err, &d) {
		t.Fatalf("mutated recording replayed clean: %v", err)
	}
	if d.EventIndex != k {
		t.Errorf("divergence at event %d, want %d", d.EventIndex, k)
	}
	if d.Step != art.EvSteps[k] {
		t.Errorf("divergence at step %d, want %d", d.Step, art.EvSteps[k])
	}
	if d.Got == d.Want || d.Got == "" {
		t.Errorf("useless diff: got=%q want=%q", d.Got, d.Want)
	}
}

// TestReplayDetectsFaultPlanMutation records the same run under two fault
// plans differing in one ordinal, splices plan B's arm into plan A's
// recording, and demands the replay diverge at exactly the first event
// where the two genuine runs part ways.
func TestReplayDetectsFaultPlanMutation(t *testing.T) {
	planA := "kernel.fork nth=2 pid=PID"
	planB := "kernel.fork nth=3 pid=PID"
	artA := recordStorm(t, planA)
	artB := recordStorm(t, planB)

	// The first divergent event between the two genuine runs.
	want := -1
	for i := range artA.Events {
		if i >= len(artB.Events) || artA.Events[i] != artB.Events[i] {
			want = i
			break
		}
	}
	if want < 0 {
		t.Fatal("plans nth=2 and nth=3 produced identical runs; the mutation test needs a real difference")
	}

	// Splice the mutated ordinal into A's recording. The recorded plan text
	// already has the pid substituted, so edit it in place rather than
	// re-substituting from the template.
	found := false
	for i := range artA.Ops {
		if artA.Ops[i].Kind == OpFaults {
			artA.Ops[i].Data = []byte(strings.ReplaceAll(string(artA.Ops[i].Data), "nth=2", "nth=3"))
			found = true
		}
	}
	if !found {
		t.Fatal("no OpFaults in recording")
	}

	err := NewReplayer(artA).RunToEnd()
	var d *DivergenceError
	if !errors.As(err, &d) {
		t.Fatalf("mutated fault plan replayed clean: %v", err)
	}
	if d.EventIndex != want {
		t.Errorf("divergence at event %d, want %d", d.EventIndex, want)
	}
	if d.Step != artB.EvSteps[want] {
		t.Errorf("divergence at step %d, want %d (the mutated run follows plan B)", d.Step, artB.EvSteps[want])
	}
}

// TestReplayTimeTravel exercises Goto both ways across checkpoint
// boundaries and re-verifies the end state after wandering.
func TestReplayTimeTravel(t *testing.T) {
	art := recordStorm(t, stormPlan)
	rp := NewReplayer(art, ReplayOptions{CheckpointInterval: 16})
	if err := rp.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if n := len(rp.Checkpoints()); n < 3 {
		t.Fatalf("only %d checkpoints over %d steps at interval 16", n, art.Steps)
	}

	mid := art.Steps / 2
	if err := rp.Goto(mid); err != nil {
		t.Fatalf("goto %d: %v", mid, err)
	}
	if rp.Step() != mid {
		t.Fatalf("at step %d after goto %d", rp.Step(), mid)
	}
	// Deep rewind, then all the way forward again.
	if err := rp.Goto(1); err != nil {
		t.Fatal(err)
	}
	if err := rp.Goto(art.Steps); err != nil {
		t.Fatal(err)
	}
	if err := rp.VerifyFinal(); err != nil {
		t.Fatalf("end state after time travel: %v", err)
	}
}

// TestReplaySmoke is the make replay-smoke scenario: record a fault-storm
// soak, replay it, and reverse-continue to the injected machine fault via
// nearest-checkpoint restore plus forward re-execution.
func TestReplaySmoke(t *testing.T) {
	art := recordStorm(t, stormPlan)
	rp := NewReplayer(art, ReplayOptions{CheckpointInterval: 16})
	if err := rp.RunToEnd(); err != nil {
		t.Fatalf("replay diverged: %v", err)
	}

	sess := NewSession(rp)
	sess.Breaks = []Breakpoint{{Kind: ktrace.KFault, What: -1}}

	stop, err := sess.ReverseContinue()
	if err != nil {
		t.Fatalf("reverse-continue: %v", err)
	}
	if stop.EventIndex < 0 || stop.Event.Kind != ktrace.KFault {
		t.Fatalf("reverse-continue stopped on %v, want a fault event", stop)
	}
	if rp.Step() != art.EvSteps[stop.EventIndex] {
		t.Fatalf("landed at step %d, want the faulting step %d", rp.Step(), art.EvSteps[stop.EventIndex])
	}
	faultStep := rp.Step()

	// Reverse-step through the fault neighborhood (clamped at step 0 in
	// case the fault lands in the first couple of passes).
	back := uint64(3)
	if faultStep < back {
		back = faultStep
	}
	for i := uint64(0); i < back; i++ {
		if err := sess.ReverseStep(); err != nil {
			t.Fatalf("reverse-step %d: %v", i, err)
		}
	}
	if rp.Step() != faultStep-back {
		t.Fatalf("reverse-stepped to %d, want %d", rp.Step(), faultStep-back)
	}

	// Forward continue must land just past the same fault.
	stop2, err := sess.Continue()
	if err != nil {
		t.Fatalf("continue: %v", err)
	}
	if stop2.EventIndex != stop.EventIndex {
		t.Fatalf("forward continue found event %d, reverse found %d", stop2.EventIndex, stop.EventIndex)
	}
	if rp.Step() != faultStep+1 {
		t.Fatalf("forward continue stopped at %d, want %d", rp.Step(), faultStep+1)
	}

	// And the run still verifies after all the travel.
	if err := rp.Goto(rp.Steps()); err != nil {
		t.Fatal(err)
	}
	if err := rp.VerifyFinal(); err != nil {
		t.Fatalf("end state after time travel: %v", err)
	}
}

// storeProg increments a counter word in .data forever; the watchpoint
// tests watch that word.
const storeProg = `
	la r1, counter
	movi r2, 0
loop:	addi r2, 1
	st r2, [r1]
	movi r0, SYS_sleep
	movi r1, 3
	syscall
	la r1, counter
	jmp loop
.data
counter:	.word 0
`

// TestSessionWatchpoint sets a memory watchpoint and drives it in both
// directions: forward Continue stops on the first change, ReverseContinue
// finds the last change before the current position.
func TestSessionWatchpoint(t *testing.T) {
	rec := NewRecorder(Options{})
	if err := rec.Install("/bin/store", storeProg, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	img, err := rec.System().Assemble(storeProg)
	if err != nil {
		t.Fatal(err)
	}
	var counter uint32
	for _, sym := range img.Syms {
		if sym.Name == "counter" {
			counter = sym.Value
		}
	}
	if counter == 0 {
		t.Fatal("no counter symbol")
	}
	p, err := rec.Spawn("/bin/store", []string{"store"}, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	rec.Run(120)
	msg := (&procfs2.CtlBuf{}).Kill(types.SIGKILL).Bytes()
	if err := rec.Ctl(p.Pid, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	art, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	rp := NewReplayer(art, ReplayOptions{CheckpointInterval: 8})
	sess := NewSession(rp)
	sess.Watches = []*Watch{{Pid: p.Pid, Addr: counter, Len: 4}}

	stop, err := sess.Continue()
	if err != nil {
		t.Fatalf("continue to watch: %v", err)
	}
	if stop.Watch == nil {
		t.Fatalf("continue stopped without tripping the watch: %v", stop)
	}
	firstHit := rp.Step()

	// Run well past more stores, then reverse back to the latest change.
	for i := 0; i < 30 && rp.Step() < rp.Steps(); i++ {
		if err := rp.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	stop2, err := sess.ReverseContinue()
	if err != nil {
		t.Fatalf("reverse-continue to watch: %v", err)
	}
	if stop2.Watch == nil {
		t.Fatalf("reverse-continue missed the watch: %v", stop2)
	}
	if stop2.Step <= firstHit {
		t.Fatalf("reverse-continue found step %d, want the latest change after %d", stop2.Step, firstHit)
	}
}
