package replay

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ktrace"
)

// Session is the time-travel debugging layer over a Replayer: breakpoints
// on trace-event classes, watchpoints on process memory, and motion in both
// directions. Reverse motion is the rr trick — the recorded event stream
// says where things happened, so "reverse-continue" is a scan backward
// through the recording followed by a Goto, which is itself a checkpoint
// restore plus forward re-execution.
type Session struct {
	R       *Replayer
	Breaks  []Breakpoint
	Watches []*Watch
}

// Breakpoint matches a class of trace events. Zero fields are wildcards
// except What, which uses -1 as the wildcard (0 is a real what-value).
type Breakpoint struct {
	Kind ktrace.Kind // event class to stop on
	Pid  int         // 0 = any process
	What int32       // -1 = any (signal/syscall/fault number otherwise)
}

// String renders the breakpoint for the dbg UI.
func (b Breakpoint) String() string {
	s := b.Kind.String()
	if b.What >= 0 {
		s += fmt.Sprintf(" what=%d", b.What)
	}
	if b.Pid != 0 {
		s += fmt.Sprintf(" pid=%d", b.Pid)
	}
	return s
}

// Matches reports whether the event trips the breakpoint.
func (b Breakpoint) Matches(e ktrace.Event) bool {
	if b.Kind != ktrace.KNone && e.Kind != b.Kind {
		return false
	}
	if b.Pid != 0 && int(e.Pid) != b.Pid {
		return false
	}
	if b.What >= 0 && e.What != b.What {
		return false
	}
	return true
}

// Watch is a memory watchpoint evaluated at pass granularity: after each
// scheduler pass the bytes at [Addr, Addr+Len) in pid's address space are
// compared against the previous pass.
type Watch struct {
	Pid  int
	Addr uint32
	Len  uint32

	prev   []byte
	prevOK bool
}

// String renders the watchpoint for the dbg UI.
func (w *Watch) String() string {
	return fmt.Sprintf("pid=%d [%#x,+%d)", w.Pid, w.Addr, w.Len)
}

// read fetches the watched bytes; ok is false when the process or mapping
// is gone (which itself counts as a change when it was readable before).
func (w *Watch) read(k *kernel.Kernel) ([]byte, bool) {
	p := k.Proc(w.Pid)
	if p == nil || p.AS == nil {
		return nil, false
	}
	buf := make([]byte, w.Len)
	if _, err := p.AS.ReadAt(buf, int64(w.Addr)); err != nil {
		return nil, false
	}
	return buf, true
}

// NewSession wraps a replayer.
func NewSession(r *Replayer) *Session { return &Session{R: r} }

// Stop describes why motion stopped.
type Stop struct {
	Step       uint64      // position after the motion
	EventIndex int         // matching event, -1 for watchpoints / end
	Event      ktrace.Event // valid when EventIndex >= 0
	Watch      *Watch      // the tripped watchpoint, if any
	AtEnd      bool        // ran off the recorded end
	AtStart    bool        // ran back to step 0
}

// String renders the stop reason.
func (s *Stop) String() string {
	switch {
	case s.Watch != nil:
		return fmt.Sprintf("watchpoint %s changed during step %d", s.Watch, s.Step)
	case s.EventIndex >= 0:
		return fmt.Sprintf("stopped at step %d on event %d: %s", s.Step, s.EventIndex, FmtEvent(s.Event))
	case s.AtEnd:
		return fmt.Sprintf("at end of recording (step %d)", s.Step)
	case s.AtStart:
		return fmt.Sprintf("at start of recording (step %d)", s.Step)
	}
	return fmt.Sprintf("stopped at step %d", s.Step)
}

// matchIdx returns the first recorded event index at or after (forward) or
// the last strictly before (backward) the given step that trips a
// breakpoint, or -1.
func (s *Session) matchForward(fromStep uint64) int {
	if len(s.Breaks) == 0 {
		return -1
	}
	for i, e := range s.R.art.Events {
		if s.R.art.EvSteps[i] < fromStep {
			continue
		}
		for _, b := range s.Breaks {
			if b.Matches(e) {
				return i
			}
		}
	}
	return -1
}

func (s *Session) matchBackward(beforeStep uint64) int {
	if len(s.Breaks) == 0 {
		return -1
	}
	for i := len(s.R.art.Events) - 1; i >= 0; i-- {
		if s.R.art.EvSteps[i] >= beforeStep {
			continue
		}
		for _, b := range s.Breaks {
			if b.Matches(s.R.art.Events[i]) {
				return i
			}
		}
	}
	return -1
}

// armWatches primes the watchpoint baselines at the current position.
func (s *Session) armWatches() {
	for _, w := range s.Watches {
		w.prev, w.prevOK = w.read(s.R.sys.K)
	}
}

// checkWatches reports the first watchpoint whose bytes changed since the
// baseline, updating all baselines.
func (s *Session) checkWatches() *Watch {
	var hit *Watch
	for _, w := range s.Watches {
		cur, ok := w.read(s.R.sys.K)
		changed := ok != w.prevOK || (ok && string(cur) != string(w.prev))
		w.prev, w.prevOK = cur, ok
		if changed && hit == nil {
			hit = w
		}
	}
	return hit
}

// StepForward advances one pass.
func (s *Session) StepForward() error {
	if s.R.Step() >= s.R.Steps() {
		return fmt.Errorf("replay: at end of recording")
	}
	return s.R.StepOnce()
}

// ReverseStep rewinds one pass: nearest-checkpoint restore plus forward
// re-execution to step-1.
func (s *Session) ReverseStep() error {
	if s.R.Step() == 0 {
		return fmt.Errorf("replay: at start of recording")
	}
	return s.R.Goto(s.R.Step() - 1)
}

// Continue runs forward until a breakpoint event fires or a watchpoint
// trips, stopping after the pass that contains the hit (the event has just
// happened, as in a conventional debugger).
func (s *Session) Continue() (*Stop, error) {
	s.armWatches()
	// Event breakpoints are resolved against the recording, so scan first
	// and only single-step when a watchpoint needs per-pass evaluation.
	evIdx := s.matchForward(s.R.Step())
	if len(s.Watches) == 0 {
		if evIdx < 0 {
			if err := s.R.Goto(s.R.Steps()); err != nil {
				return nil, err
			}
			return &Stop{Step: s.R.Step(), EventIndex: -1, AtEnd: true}, nil
		}
		if err := s.R.Goto(s.R.art.EvSteps[evIdx] + 1); err != nil {
			return nil, err
		}
		return &Stop{Step: s.R.Step(), EventIndex: evIdx, Event: s.R.art.Events[evIdx]}, nil
	}
	for s.R.Step() < s.R.Steps() {
		if err := s.R.StepOnce(); err != nil {
			return nil, err
		}
		if w := s.checkWatches(); w != nil {
			return &Stop{Step: s.R.Step(), EventIndex: -1, Watch: w}, nil
		}
		if evIdx >= 0 && s.R.Step() > s.R.art.EvSteps[evIdx] {
			return &Stop{Step: s.R.Step(), EventIndex: evIdx, Event: s.R.art.Events[evIdx]}, nil
		}
	}
	return &Stop{Step: s.R.Step(), EventIndex: -1, AtEnd: true}, nil
}

// ReverseContinue runs backward until the most recent breakpoint event
// before the current position, landing at the step boundary just before
// the pass that emits it — the state in which the fault/signal/call is
// about to happen.
func (s *Session) ReverseContinue() (*Stop, error) {
	evIdx := s.matchBackward(s.R.Step())
	if len(s.Watches) > 0 {
		if stop, err := s.reverseWatch(evIdx); stop != nil || err != nil {
			return stop, err
		}
	}
	if evIdx < 0 {
		if err := s.R.Goto(0); err != nil {
			return nil, err
		}
		return &Stop{Step: 0, EventIndex: -1, AtStart: true}, nil
	}
	if err := s.R.Goto(s.R.art.EvSteps[evIdx]); err != nil {
		return nil, err
	}
	return &Stop{Step: s.R.Step(), EventIndex: evIdx, Event: s.R.art.Events[evIdx]}, nil
}

// reverseWatch finds the last pass before the current position during
// which a watched range changed: rewind to the nearest checkpoint, replay
// forward tracking changes, and land just after the latest changing pass
// that is still before where we started (and after any candidate
// breakpoint event, which then loses). Returns (nil, nil) when no
// watchpoint changed in that window.
func (s *Session) reverseWatch(evIdx int) (*Stop, error) {
	origin := s.R.Step()
	var from uint64
	for _, c := range s.R.ckpts {
		if c.step < origin && c.step > from {
			from = c.step
		}
	}
	if err := s.R.Goto(from); err != nil {
		return nil, err
	}
	s.armWatches()
	lastChange := uint64(0)
	var lastWatch *Watch
	for s.R.Step() < origin {
		if err := s.R.StepOnce(); err != nil {
			return nil, err
		}
		if w := s.checkWatches(); w != nil {
			lastChange, lastWatch = s.R.Step(), w
		}
	}
	if lastWatch == nil {
		// Nothing changed in this window; fall back to the event match.
		return nil, nil
	}
	if evIdx >= 0 && s.R.art.EvSteps[evIdx]+1 > lastChange {
		return nil, nil // the breakpoint event is more recent; it wins
	}
	if err := s.R.Goto(lastChange); err != nil {
		return nil, err
	}
	return &Stop{Step: s.R.Step(), EventIndex: -1, Watch: lastWatch}, nil
}
