package ktrace

import (
	"encoding/binary"
	"errors"
)

// MaxSysHist bounds the per-syscall histogram (comfortably above the
// kernel's MaxSysNum without importing it).
const MaxSysHist = 256

// Stats are the kernel-wide tracing counters served by the /proc counters
// page: how many events have been emitted and dropped across all rings,
// and a histogram of traced system call entries.
type Stats struct {
	Emitted uint64
	Dropped uint64
	PerSys  [MaxSysHist]uint64
}

// Count records one emitted event (dst rings it landed in update their own
// drop counts; AddDropped folds those in).
func (s *Stats) Count(kind Kind, what int32) {
	s.Emitted++
	if kind == KSysEntry && what >= 0 && what < MaxSysHist {
		s.PerSys[what]++
	}
}

// AddDropped folds ring evictions into the kernel-wide counter.
func (s *Stats) AddDropped(n uint64) { s.Dropped += n }

// EncodeStats serializes the counters page: emitted, dropped, then the
// non-zero histogram entries as (syscall, count) pairs. The encoding is
// deterministic (ascending syscall number).
func EncodeStats(s Stats) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint64(b, s.Emitted)
	b = binary.BigEndian.AppendUint64(b, s.Dropped)
	n := uint32(0)
	for _, c := range s.PerSys {
		if c != 0 {
			n++
		}
	}
	b = binary.BigEndian.AppendUint32(b, n)
	for num, c := range s.PerSys {
		if c != 0 {
			b = binary.BigEndian.AppendUint32(b, uint32(num))
			b = binary.BigEndian.AppendUint64(b, c)
		}
	}
	return b
}

// errBadStats reports a malformed counters page.
var errBadStats = errors.New("ktrace: malformed counters page")

// DecodeStats parses the counters page.
func DecodeStats(b []byte) (Stats, error) {
	var s Stats
	if len(b) < 20 {
		return s, errBadStats
	}
	s.Emitted = binary.BigEndian.Uint64(b)
	s.Dropped = binary.BigEndian.Uint64(b[8:])
	n := int(binary.BigEndian.Uint32(b[16:]))
	b = b[20:]
	if n < 0 || n > MaxSysHist || len(b) != n*12 {
		return s, errBadStats
	}
	for i := 0; i < n; i++ {
		num := binary.BigEndian.Uint32(b[i*12:])
		if num >= MaxSysHist {
			return s, errBadStats
		}
		s.PerSys[num] = binary.BigEndian.Uint64(b[i*12+4:])
	}
	return s, nil
}
