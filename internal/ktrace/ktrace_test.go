package ktrace

import (
	"bytes"
	"io"
	"testing"
)

func ev(kind Kind, what int32) Event {
	return Event{Time: 7, Pid: 3, LWP: 1, Kind: kind, What: what,
		A: 0xA0A0, B: 0xB0B0, Args: [6]uint32{1, 2, 3, 4, 5, 6}}
}

func TestEventRoundTrip(t *testing.T) {
	e := ev(KSysEntry, 42)
	e.Seq = 99
	b := AppendEncode(nil, e)
	if len(b) != EventSize {
		t.Fatalf("encoded size %d, want %d", len(b), EventSize)
	}
	got, err := DecodeEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
}

func TestDecodeEventErrors(t *testing.T) {
	if _, err := DecodeEvent(make([]byte, EventSize-1)); err == nil {
		t.Fatal("short buffer: want error")
	}
	bad := AppendEncode(nil, Event{Kind: kindMax})
	if _, err := DecodeEvent(bad); err == nil {
		t.Fatal("unknown kind: want error")
	}
	if _, err := Decode(make([]byte, EventSize+1)); err == nil {
		t.Fatal("partial trailing event: want error")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	events := []Event{ev(KSysEntry, 1), ev(KSysExit, 1), ev(KExit, 0)}
	got, err := Decode(Encode(events))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestRingAppendAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := int32(0); i < 6; i++ {
		e := ev(KSchedTick, i)
		r.Append(&e)
	}
	if r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("len %d dropped %d, want 4 and 2", r.Len(), r.Dropped())
	}
	if r.FirstSeq() != 2 || r.NextSeq() != 6 {
		t.Fatalf("window [%d,%d), want [2,6)", r.FirstSeq(), r.NextSeq())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Seq != uint64(i+2) || e.What != int32(i+2) {
			t.Fatalf("event %d: seq %d what %d", i, e.Seq, e.What)
		}
	}
}

func TestRingResize(t *testing.T) {
	r := NewRing(8)
	for i := int32(0); i < 8; i++ {
		e := ev(KSchedTick, i)
		r.Append(&e)
	}
	r.Resize(3)
	if r.Cap() != 3 || r.Len() != 3 || r.Dropped() != 5 {
		t.Fatalf("cap %d len %d dropped %d after shrink", r.Cap(), r.Len(), r.Dropped())
	}
	if r.Events()[0].What != 5 {
		t.Fatalf("oldest after shrink = %d, want 5", r.Events()[0].What)
	}
	r.Resize(16)
	e := ev(KSchedTick, 8)
	r.Append(&e)
	if r.Len() != 4 || r.NextSeq() != 9 {
		t.Fatalf("after grow: len %d next %d", r.Len(), r.NextSeq())
	}
}

func TestRingReadAt(t *testing.T) {
	r := NewRing(4)
	for i := int32(0); i < 6; i++ {
		e := ev(KSchedTick, i)
		r.Append(&e)
	}
	// The retained window is seqs [2,6): bytes [128, 384).
	buf := make([]byte, 4*EventSize)
	n, err := r.ReadAt(buf, 2*EventSize)
	if err != nil || n != 4*EventSize {
		t.Fatalf("ReadAt window: n=%d err=%v", n, err)
	}
	evs, err := Decode(buf[:n])
	if err != nil || evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Fatalf("window decode: %v %+v", err, evs)
	}
	if _, err := r.ReadAt(buf, 6*EventSize); err != io.EOF {
		t.Fatalf("past window: err=%v, want io.EOF", err)
	}
	if _, err := r.ReadAt(buf, 0); err != ErrDataLoss {
		t.Fatalf("before window: err=%v, want ErrDataLoss", err)
	}
	// A misaligned offset serves the tail of an event.
	n, err = r.ReadAt(buf[:EventSize], 2*EventSize+10)
	if err != nil || n != EventSize {
		t.Fatalf("misaligned: n=%d err=%v", n, err)
	}
	whole := AppendEncode(nil, r.Events()[0])
	whole = AppendEncode(whole, r.Events()[1])
	if !bytes.Equal(buf[:EventSize], whole[10:10+EventSize]) {
		t.Fatal("misaligned read returned wrong bytes")
	}
}

func TestRingLazyAllocation(t *testing.T) {
	r := NewRing(1 << 20)
	if r.Len() != 0 {
		t.Fatal("fresh ring should hold nothing")
	}
	e := ev(KSchedTick, 0)
	r.Append(&e)
	if r.Len() != 1 {
		t.Fatal("one append, one event")
	}
}

func TestArgStr(t *testing.T) {
	var e Event
	EncodeArgStr(&e, "/tmp/truss.out", 0)
	s, off, complete := DecodeArgStr(e)
	if s != "/tmp/truss.out" || off != 0 || !complete {
		t.Fatalf("got %q off=%d complete=%v", s, off, complete)
	}
	// A long string spans chunked events that reassemble exactly.
	long := "/a/very/long/path/that/cannot/fit/in/one/event"
	var got string
	for off := 0; ; off += ArgStrMax {
		EncodeArgStr(&e, long, off)
		chunk, o, complete := DecodeArgStr(e)
		if o != off {
			t.Fatalf("chunk at %d reports offset %d", off, o)
		}
		got += chunk
		if complete {
			break
		}
		if len(chunk) != ArgStrMax {
			t.Fatalf("non-final chunk of %d bytes", len(chunk))
		}
	}
	if got != long {
		t.Fatalf("reassembled %q, want %q", got, long)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	var s Stats
	s.Count(KSysEntry, 5)
	s.Count(KSysEntry, 5)
	s.Count(KSysExit, 5)
	s.Count(KFault, 1)
	s.AddDropped(3)
	got, err := DecodeStats(EncodeStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: got %+v want %+v", got, s)
	}
	if s.Emitted != 4 || s.Dropped != 3 || s.PerSys[5] != 2 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestStatsDecodeErrors(t *testing.T) {
	if _, err := DecodeStats(nil); err == nil {
		t.Fatal("empty: want error")
	}
	var s Stats
	s.Count(KSysEntry, 1)
	b := EncodeStats(s)
	if _, err := DecodeStats(b[:len(b)-1]); err == nil {
		t.Fatal("truncated: want error")
	}
	b[16], b[17], b[18], b[19] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeStats(b); err == nil {
		t.Fatal("absurd count: want error")
	}
}

// FuzzTraceDecode checks that decoding arbitrary bytes never panics and that
// whatever decodes successfully re-encodes to the identical bytes.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, EventSize-1))
	f.Add(AppendEncode(nil, ev(KSysEntry, 3)))
	f.Add(Encode([]Event{ev(KSigPost, 9), ev(KExit, 0)}))
	bad := AppendEncode(nil, Event{Kind: kindMax + 7})
	f.Add(bad)
	f.Add(EncodeStats(Stats{Emitted: 10, Dropped: 2}))
	f.Fuzz(func(t *testing.T, b []byte) {
		evs, err := Decode(b)
		if err == nil {
			if again := Encode(evs); !bytes.Equal(again, b) {
				t.Fatalf("re-encode mismatch:\n in %x\nout %x", b, again)
			}
		}
		if e, err := DecodeEvent(b); err == nil {
			rt, err2 := DecodeEvent(AppendEncode(nil, e))
			if err2 != nil || rt != e {
				t.Fatalf("event round trip: %v %+v %+v", err2, rt, e)
			}
		}
		// The counters page decoder must be panic-free on garbage too.
		if st, err := DecodeStats(b); err == nil {
			rt, err2 := DecodeStats(EncodeStats(st))
			if err2 != nil || rt != st {
				t.Fatalf("stats round trip: %v", err2)
			}
		}
	})
}

// The emit hot path: one ring append, including the wrap.
func BenchmarkRingAppend(b *testing.B) {
	r := NewRing(1 << 16)
	e := ev(KSysEntry, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(&e)
	}
}
