// Package ktrace is the kernel event-tracing subsystem: a fixed-capacity
// ring buffer of trace events written from the kernel's natural control
// points — the stop points of the paper's Figure 3 (system call entry and
// exit, machine faults, signal receipt) plus the bookkeeping around them
// (signals posted, LWP state transitions, process creation and death,
// scheduling ticks).
//
// Where the /proc stop machinery lets a controlling process *stop* a target
// on those events, ktrace lets it *record* them: a cheap, complete event
// history that tools like truss can read back instead of re-deriving it by
// stop-and-poll, and that tests can compare across runs to verify the
// simulation's determinism.
//
// The package is a leaf: it knows nothing of the kernel. The kernel owns
// the rings (one per traced process, plus an optional kernel-wide ring) and
// appends events; the process file system serves the encoded stream as the
// per-process trace file. Events have a fixed-size big-endian wire encoding
// so the file reads like any other proc file — locally, and remotely over
// rfs with no per-operation marshalling knowledge.
package ktrace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind classifies one trace event.
type Kind uint32

// Event kinds.
const (
	KNone      Kind = iota
	KSysEntry       // system call entry: What=sysnum, Args=arguments
	KSysExit        // system call exit: What=sysnum, A=return value, B=errno
	KFault          // machine fault: What=fault number, A=faulting address
	KSigPost        // signal generated for the process: What=signal
	KSigDeliver     // signal acted on by psig(): What=signal, A=handler
	KLWPState       // LWP state transition: What=new state, A=old state, B=stop why, Args[0]=stop what
	KFork           // process forked a child: What=child pid
	KExit           // process exited: What=wait(2) status encoding
	KSchedTick      // scheduling quantum expired (involuntary context switch)
	KArgStr         // inline string argument of the preceding KSysEntry: see EncodeArgStr
	kindMax
)

var kindNames = [...]string{"none", "sysentry", "sysexit", "fault",
	"sigpost", "sigdeliver", "lwpstate", "fork", "exit", "schedtick", "argstr"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind#%d", uint32(k))
}

// Event is one kernel trace event. The interpretation of What, A, B and
// Args depends on Kind; unused fields are zero.
type Event struct {
	Seq  uint64 // position in this ring's stream, stamped at append
	Time int64  // simulated clock at emission
	Pid  int32
	LWP  int32
	Kind Kind
	What int32
	A    uint32
	B    uint32
	Args [6]uint32 // system call arguments (KSysEntry)
}

// EventSize is the fixed wire size of one encoded event.
const EventSize = 64

// AppendEncode appends the 64-byte big-endian encoding of e to b.
func AppendEncode(b []byte, e Event) []byte {
	b = binary.BigEndian.AppendUint64(b, e.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(e.Time))
	b = binary.BigEndian.AppendUint32(b, uint32(e.Pid))
	b = binary.BigEndian.AppendUint32(b, uint32(e.LWP))
	b = binary.BigEndian.AppendUint32(b, uint32(e.Kind))
	b = binary.BigEndian.AppendUint32(b, uint32(e.What))
	b = binary.BigEndian.AppendUint32(b, e.A)
	b = binary.BigEndian.AppendUint32(b, e.B)
	for _, a := range e.Args {
		b = binary.BigEndian.AppendUint32(b, a)
	}
	return b
}

// ArgStrMax is the chunk payload capacity of one KArgStr event: the Args
// words hold the raw bytes, packed big-endian so the wire encoding reads as
// the string itself. Longer strings span consecutive KArgStr events.
const ArgStrMax = 24

// EncodeArgStr fills in the payload fields of a KArgStr event with the chunk
// of s starting at off: What is the argument index (set by the caller), B is
// the chunk's byte offset within the string, the low byte of A the chunk
// length, and bit 8 of A marks the chunk that completes the string. Strings
// like pathnames are captured inline at system call entry because the
// address space they point into may be gone (exit, exec) by the time a tool
// drains the event.
func EncodeArgStr(e *Event, s string, off int) {
	chunk := s[off:]
	complete := uint32(1)
	if len(chunk) > ArgStrMax {
		chunk = chunk[:ArgStrMax]
		complete = 0
	}
	e.B = uint32(off)
	e.A = complete<<8 | uint32(len(chunk))
	e.Args = [6]uint32{}
	for i := 0; i < len(chunk); i++ {
		e.Args[i/4] |= uint32(chunk[i]) << uint(24-8*(i%4))
	}
}

// DecodeArgStr extracts one KArgStr event's chunk, the chunk's offset within
// the string, and whether the string is complete with it.
func DecodeArgStr(e Event) (chunk string, off int, complete bool) {
	n := int(e.A & 0xFF)
	if n > ArgStrMax {
		n = ArgStrMax
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(e.Args[i/4] >> uint(24-8*(i%4)))
	}
	return string(b), int(e.B), e.A&(1<<8) != 0
}

// errTruncated reports a buffer that does not hold a whole event.
var errTruncated = errors.New("ktrace: truncated event")

// DecodeEvent decodes one event from the front of b.
func DecodeEvent(b []byte) (Event, error) {
	if len(b) < EventSize {
		return Event{}, errTruncated
	}
	var e Event
	e.Seq = binary.BigEndian.Uint64(b)
	e.Time = int64(binary.BigEndian.Uint64(b[8:]))
	e.Pid = int32(binary.BigEndian.Uint32(b[16:]))
	e.LWP = int32(binary.BigEndian.Uint32(b[20:]))
	e.Kind = Kind(binary.BigEndian.Uint32(b[24:]))
	e.What = int32(binary.BigEndian.Uint32(b[28:]))
	e.A = binary.BigEndian.Uint32(b[32:])
	e.B = binary.BigEndian.Uint32(b[36:])
	for i := range e.Args {
		e.Args[i] = binary.BigEndian.Uint32(b[40+4*i:])
	}
	if e.Kind >= kindMax {
		return Event{}, fmt.Errorf("ktrace: unknown event kind %d", uint32(e.Kind))
	}
	return e, nil
}

// Decode decodes a whole stream of events. A trailing partial event is an
// error: the wire format is a multiple of EventSize by construction.
func Decode(b []byte) ([]Event, error) {
	if len(b)%EventSize != 0 {
		return nil, errTruncated
	}
	out := make([]Event, 0, len(b)/EventSize)
	for len(b) > 0 {
		e, err := DecodeEvent(b)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		b = b[EventSize:]
	}
	return out, nil
}

// Encode encodes a slice of events.
func Encode(events []Event) []byte {
	b := make([]byte, 0, len(events)*EventSize)
	for _, e := range events {
		b = AppendEncode(b, e)
	}
	return b
}

// ErrDataLoss is returned by Ring.ReadAt for offsets whose events have been
// overwritten: the reader fell behind the drop policy.
var ErrDataLoss = errors.New("ktrace: trace data at this offset has been overwritten")

// Ring is a fixed-capacity ring buffer of events. When full, the oldest
// event is overwritten (and counted as dropped) — a reader that keeps up
// sees a complete stream; one that falls behind gets ErrDataLoss for the
// overwritten region rather than silently skewed data. Storage grows
// lazily, so a large capacity costs nothing until events arrive.
type Ring struct {
	cap     int
	buf     []Event // circular once len(buf) == cap
	start   int     // index of the oldest event when the buffer has wrapped
	next    uint64  // sequence number of the next event appended
	dropped uint64  // events overwritten by the drop policy
}

// DefaultCap is the default ring capacity (in events) when tracing is
// enabled without an explicit size.
const DefaultCap = 1 << 16

// maxCap bounds user-requested capacities (keeps a hostile ctl write from
// asking for an absurd allocation ceiling).
const maxCap = 1 << 22

// NewRing creates a ring with the given capacity; cap <= 0 selects
// DefaultCap, and capacities above the sanity maximum are clamped.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	if capacity > maxCap {
		capacity = maxCap
	}
	return &Ring{cap: capacity}
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return r.cap }

// Len returns the number of events currently held.
func (r *Ring) Len() int { return len(r.buf) }

// NextSeq returns the sequence number the next appended event will get;
// the stream so far is [FirstSeq, NextSeq).
func (r *Ring) NextSeq() uint64 { return r.next }

// FirstSeq returns the sequence number of the oldest retained event.
func (r *Ring) FirstSeq() uint64 { return r.next - uint64(len(r.buf)) }

// Dropped returns how many events the drop policy has overwritten.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Append stamps e with the next sequence number and stores it, overwriting
// the oldest event if the ring is full.
func (r *Ring) Append(e *Event) {
	e.Seq = r.next
	r.next++
	if len(r.buf) < r.cap {
		if r.buf == nil {
			// The deferred allocation, in full: growing incrementally would
			// recopy the buffer at every doubling on the emit hot path.
			r.buf = make([]Event, 0, r.cap)
		}
		r.buf = append(r.buf, *e)
		return
	}
	r.buf[r.start] = *e
	r.start++
	if r.start == len(r.buf) {
		r.start = 0
	}
	r.dropped++
}

// CheckSane verifies the ring's structural invariants: occupancy within
// capacity, a start index inside the buffer, a sequence counter consistent
// with occupancy, and strictly consecutive sequence numbers oldest-to-newest.
// The fault-storm harness calls it after every injected fault; nothing in
// the fault paths should be able to corrupt the trace of its own fallout.
func (r *Ring) CheckSane() error {
	if r.cap <= 0 {
		return fmt.Errorf("ktrace: ring capacity %d", r.cap)
	}
	if len(r.buf) > r.cap {
		return fmt.Errorf("ktrace: ring holds %d events over capacity %d", len(r.buf), r.cap)
	}
	if r.start != 0 && r.start >= len(r.buf) {
		return fmt.Errorf("ktrace: ring start %d outside %d retained events", r.start, len(r.buf))
	}
	if r.next < uint64(len(r.buf)) {
		return fmt.Errorf("ktrace: ring sequence %d below occupancy %d", r.next, len(r.buf))
	}
	if len(r.buf) == r.cap && r.dropped == 0 && r.next > uint64(len(r.buf)) {
		return fmt.Errorf("ktrace: full ring advanced %d events without counting drops",
			r.next-uint64(len(r.buf)))
	}
	want := r.FirstSeq()
	for i := 0; i < len(r.buf); i++ {
		if got := r.at(i).Seq; got != want {
			return fmt.Errorf("ktrace: event %d has seq %d, want %d", i, got, want)
		}
		want++
	}
	return nil
}

// at returns the i-th oldest retained event.
func (r *Ring) at(i int) Event {
	j := r.start + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, len(r.buf))
	for i := range out {
		out[i] = r.at(i)
	}
	return out
}

// Clone returns an independent deep copy of the ring: same capacity,
// retained events, sequence numbering and drop count. Whole-kernel
// checkpoints use it to freeze a trace stream without aliasing the live
// buffer.
func (r *Ring) Clone() *Ring {
	c := &Ring{cap: r.cap, start: r.start, next: r.next, dropped: r.dropped}
	if r.buf != nil {
		c.buf = make([]Event, len(r.buf), cap(r.buf))
		copy(c.buf, r.buf)
	}
	return c
}

// Resize changes the capacity, keeping the most recent events that fit.
// The sequence numbering and dropped count are preserved; events shed by a
// shrink count as dropped.
func (r *Ring) Resize(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	if capacity > maxCap {
		capacity = maxCap
	}
	evs := r.Events()
	if len(evs) > capacity {
		r.dropped += uint64(len(evs) - capacity)
		evs = evs[len(evs)-capacity:]
	}
	r.cap = capacity
	r.buf = make([]Event, len(evs), capacity)
	copy(r.buf, evs)
	r.start = 0
}

// ReadAt serves the encoded stream as a file: event with sequence s
// occupies bytes [s*EventSize, (s+1)*EventSize). Reads past the retained
// window return io.EOF (nothing there *yet* — callers poll and retry);
// reads before it return ErrDataLoss.
func (r *Ring) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrDataLoss
	}
	es := int64(EventSize)
	first, next := int64(r.FirstSeq()), int64(r.NextSeq())
	if off < first*es {
		return 0, ErrDataLoss
	}
	if off >= next*es {
		return 0, io.EOF
	}
	n := 0
	seq := off / es
	skip := int(off % es)
	var scratch []byte
	for seq < next && n < len(p) {
		scratch = AppendEncode(scratch[:0], r.at(int(seq-first)))
		n += copy(p[n:], scratch[skip:])
		skip = 0
		seq++
	}
	return n, nil
}
