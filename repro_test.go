package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

func TestSystemBoot(t *testing.T) {
	s := repro.NewSystem()
	// The conventional processes exist: 0 sched, 1 init, 2 pageout.
	for pid, comm := range map[int]string{0: "sched", 1: "init", 2: "pageout"} {
		p := s.K.Proc(pid)
		if p == nil || p.Comm != comm {
			t.Fatalf("pid %d: %+v", pid, p)
		}
	}
	// /proc and /procx are mounted.
	cl := s.Client(types.RootCred())
	if _, err := cl.ReadDir("/proc"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadDir("/procx"); err != nil {
		t.Fatal(err)
	}
	// The conventional directories exist.
	for _, dir := range []string{"/bin", "/lib", "/etc", "/tmp"} {
		attr, err := cl.Stat(dir)
		if err != nil || attr.Type != vfs.VDIR {
			t.Fatalf("%s: %v", dir, err)
		}
	}
}

func TestSystemNoInit(t *testing.T) {
	s := repro.NewSystem(repro.Options{NoInit: true})
	if s.K.InitProc() != nil {
		t.Fatal("NoInit should skip init")
	}
	// Processes can still be spawned (parentless).
	p, err := s.SpawnProg("solo", "\tmovi r0, SYS_exit\n\tmovi r1, 0\n\tsyscall\n", types.UserCred(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
}

func TestSystemOptions(t *testing.T) {
	s := repro.NewSystem(repro.Options{PageSize: 2048, Quantum: 10})
	p, err := s.SpawnProg("opt", "loop:\tjmp loop\n", types.UserCred(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.AS.PageSize() != 2048 {
		t.Fatalf("page size = %d", p.AS.PageSize())
	}
	s.K.PostSignal(p, types.SIGKILL)
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrorsSurface(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/bin/bad", "bogus instruction", 0o755, 0, 0); err == nil {
		t.Fatal("bad assembly should fail")
	}
	if _, err := s.Assemble("movi r1, SYS_getpid"); err != nil {
		t.Fatalf("kernel predefines should be available: %v", err)
	}
}

func TestOpenProcConvenience(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("conv", "loop:\tjmp loop\n", types.UserCred(100, 10))
	s.Run(2)
	f, err := s.OpenProc(p.Pid, vfs.ORead, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var info kernel.PSInfo
	if err := f.Ioctl(procfs.PIOCPSINFO, &info); err != nil {
		t.Fatal(err)
	}
	if info.Comm != "conv" {
		t.Fatalf("info = %+v", info)
	}
	f.Close()
	if _, err := s.OpenProc(99999, vfs.ORead, types.RootCred()); err != vfs.ErrNotExist {
		t.Fatalf("missing pid: %v", err)
	}
}

func TestInitReapsOrphans(t *testing.T) {
	s := repro.NewSystem()
	// A parent that forks a slow child and exits immediately: the orphan
	// is reparented to init and eventually reaped after it exits.
	p, err := s.SpawnProg("abandoner", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r5, 500		; child: spin a while, then exit
spin:	addi r5, -1
	cmpi r5, 0
	jne spin
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_exit	; parent exits first
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	// Find the orphan; it should now be a child of init.
	var orphan *kernel.Proc
	for _, q := range s.K.Procs() {
		if q.Comm == "abandoner" && q.Pid != p.Pid {
			orphan = q
		}
	}
	if orphan == nil {
		t.Fatal("orphan not found (already gone?)")
	}
	if orphan.Parent != s.K.InitProc() {
		t.Fatal("orphan not reparented to init")
	}
	// When it exits it is reaped without lingering as a zombie.
	if err := s.RunUntil(func() bool { return s.K.Proc(orphan.Pid) == nil }, 2_000_000); err != nil {
		t.Fatalf("orphan never reaped: %v", err)
	}
}

func TestFullScenarioEndToEnd(t *testing.T) {
	// A miniature of the whole system: a controller encapsulating one
	// syscall of a program that also forks, with ps running alongside.
	s := repro.NewSystem()
	p, err := s.SpawnProg("scenario", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 11
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	shr r1, 8
	movi r0, SYS_exit
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Trace exit from wait; forge the child's status so the parent exits
	// with a different code.
	var set types.SysSet
	set.Add(kernel.SysWait)
	if err := f.Ioctl(procfs.PIOCSEXIT, &set); err != nil {
		t.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhySysExit || st.What != kernel.SysWait {
		t.Fatalf("stop: %+v", st)
	}
	st.Reg.R[1] = 77 << 8 // forged wait status
	if err := f.Ioctl(procfs.PIOCSREG, &st.Reg); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 77 {
		t.Fatalf("code = %d, want the forged 77", code)
	}
}

func TestTwoSystemsAreIndependent(t *testing.T) {
	s1 := repro.NewSystem()
	s2 := repro.NewSystem()
	p1, _ := s1.SpawnProg("a", "loop:\tjmp loop\n", types.UserCred(1, 1))
	s1.Run(10)
	if s2.K.Proc(p1.Pid) != nil && s2.K.Proc(p1.Pid).Comm == "a" {
		t.Fatal("systems share state")
	}
	if s2.K.Now() >= s1.K.Now() {
		t.Fatal("clocks should be independent (s1 ran more)")
	}
}

func TestInitProgramText(t *testing.T) {
	if !strings.Contains(repro.InitProgram, "SYS_pause") {
		t.Fatal("init should idle in pause")
	}
}
