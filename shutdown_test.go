package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// TestCloseIdempotent pins the System.Close/Kernel.Shutdown contract: any
// number of calls, from any number of goroutines, in any order relative to
// the lazy worker start, shut the kernel down exactly once.
func TestCloseIdempotent(t *testing.T) {
	// Deterministic mode: Close is a no-op, repeatedly.
	det := repro.NewSystem(repro.Options{NCPU: 1})
	det.Close()
	det.Close()

	// SMP with workers started: double Close must not double-close the
	// work channel.
	s := repro.NewSystem(repro.Options{NCPU: 2})
	s.Run(20)
	s.Close()
	s.Close()

	// SMP before any Step: Shutdown lands before the lazy worker start and
	// must still win — a later Step must not leak workers.
	s2 := repro.NewSystem(repro.Options{NCPU: 2})
	s2.Close()
	s2.Close()

	// Concurrent Closes race on one kernel.
	s3 := repro.NewSystem(repro.Options{NCPU: 2})
	s3.Run(20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s3.Close()
		}()
	}
	wg.Wait()
}

// TestStepAfterShutdownPanics pins the other half of the contract: the
// kernel is dead after Shutdown, whether or not the workers ever started.
func TestStepAfterShutdownPanics(t *testing.T) {
	expectPanic := func(name string, s *repro.System) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Step after Shutdown did not panic", name)
			}
		}()
		s.Step()
	}

	// Workers never started.
	s := repro.NewSystem(repro.Options{NCPU: 2})
	s.Close()
	expectPanic("before start", s)

	// Workers started, then shut down.
	s2 := repro.NewSystem(repro.Options{NCPU: 2})
	s2.Run(20)
	s2.Close()
	expectPanic("after start", s2)
}
