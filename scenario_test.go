package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

// A full debugging session combining most of the paper's machinery in one
// scenario: a multi-process application is traced with truss while a
// debugger controls one process with breakpoints, ps observes everything,
// and the set-id rules guard a privileged helper.
func TestScenarioDebugTracedApplication(t *testing.T) {
	s := repro.NewSystem()

	// A privileged helper (setuid root) the application execs.
	if err := s.Install("/bin/helper", `
	movi r0, SYS_getuid
	syscall			; r1 = euid (0 if setuid honored)
	movi r0, SYS_exit
	syscall
`, 0o4755, 0, 0); err != nil {
		t.Fatal(err)
	}

	// The application: computes, forks a child that execs the helper,
	// reaps it, and exits with the helper's result.
	app, err := s.SpawnProg("app", `
.entry main
compute:
	la r3, acc
	ld r4, [r3]
	add r4, r2
	st r4, [r3]
	ret
main:
	movi r2, 5
	call compute
	movi r2, 7
	call compute
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exec
	la r1, helper
	syscall
	movi r0, SYS_exit
	movi r1, 99
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	shr r1, 8		; helper's exit code (its euid: 0)
	la r3, acc
	ld r4, [r3]
	add r1, r4		; + accumulated 12
	movi r0, SYS_exit
	syscall
.data
acc:	.word 0
helper:	.asciz "/bin/helper"
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}

	// A debugger takes the app, breaks on compute, watches acc.
	d, err := tools.NewDebugger(s, app, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := d.Lookup("compute")
	acc, _ := d.Lookup("acc")
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}
	wantR2 := []uint32{5, 7}
	for hit, want := range wantR2 {
		st, err := d.Cont()
		if err != nil {
			t.Fatalf("hit %d: %v", hit, err)
		}
		if st.Reg.R[2] != want {
			t.Fatalf("hit %d: r2 = %d, want %d", hit, st.Reg.R[2], want)
		}
	}
	// Inject a getpid while stopped, then verify acc through bulk read.
	ret, errno, err := d.InjectSyscall(kernel.SysGetpid)
	if err != nil || errno != 0 || int(ret) != app.Pid {
		t.Fatalf("inject: %d %v %v", ret, errno, err)
	}
	mem, _ := d.ReadMem(acc, 4)
	if mem[3] != 5 {
		t.Fatalf("acc mid-run = %d, want 5", mem[3])
	}
	if err := d.ClearBreak(fn); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// ps sees the app while it finishes.
	var psOut strings.Builder
	if err := tools.PS(s.Client(types.RootCred()), &psOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(psOut.String(), "app") {
		t.Fatal("ps does not show the app")
	}

	status, err := s.WaitExit(app)
	if err != nil {
		t.Fatal(err)
	}
	// helper euid 0 + acc 12 = 12.
	if _, code := kernel.WIfExited(status); code != 12 {
		t.Fatalf("final code = %d, want 12", code)
	}
}

// The whole pipeline of observation interfaces agrees about one process:
// flat ioctl status, hierarchical status file, psinfo, and PIOCGETPR.
func TestScenarioInterfacesAgree(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("agree", "loop:\tjmp loop\n", types.UserCred(42, 7))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)

	flat, err := s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	var st kernel.ProcStatus
	if err := flat.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}

	// Hierarchical status file.
	hier, err := s.Client(types.RootCred()).Open(
		"/procx/"+procfs.PidName(p.Pid)+"/status", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer hier.Close()
	buf := make([]byte, 4096)
	n, err := hier.Pread(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	st2 := decodeStatusT(t, buf[:n])
	if st2.Pid != st.Pid || st2.Reg.PC != st.Reg.PC || st2.Why != st.Why {
		t.Fatalf("interfaces disagree: %+v vs %+v", st, st2)
	}

	// psinfo.
	var info kernel.PSInfo
	if err := flat.Ioctl(procfs.PIOCPSINFO, &info); err != nil {
		t.Fatal(err)
	}
	if info.UID != 42 || info.GID != 7 || info.State != 'T' {
		t.Fatalf("psinfo = %+v", info)
	}

	// The deprecated escape hatch agrees too.
	var pr *kernel.Proc
	if err := flat.Ioctl(procfs.PIOCGETPR, &pr); err != nil || pr != p {
		t.Fatal("PIOCGETPR disagrees")
	}
	flat.Ioctl(procfs.PIOCRUN, nil)
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}

// 50 processes, everything observed at once: a stress pass over the whole
// system.
func TestScenarioManyProcesses(t *testing.T) {
	s := repro.NewSystem()
	var procs []*kernel.Proc
	if err := s.Install("/bin/unit", `
	movi r0, SYS_sleep
	movi r1, 200
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p, err := s.Spawn("/bin/unit", nil, types.UserCred(100+i%5, 10))
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	// ps over the full population.
	var out strings.Builder
	if err := tools.PS(s.Client(types.RootCred()), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "unit"); got != 50 {
		t.Fatalf("ps shows %d units", got)
	}
	// Everyone exits; the system drains clean.
	for _, p := range procs {
		if _, err := s.WaitExit(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(10)
	left := 0
	for _, q := range s.K.Procs() {
		if q.Comm == "unit" {
			left++
		}
	}
	if left != 0 {
		t.Fatalf("%d units not reaped", left)
	}
}

func decodeStatusT(t *testing.T, b []byte) kernel.ProcStatus {
	t.Helper()
	st, err := decodeStatus(b)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
