package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
)

// A soak pass over the whole system: many processes forking, sleeping,
// faulting and exiting while ps sweeps and a truss follows one family.
// Everything must drain cleanly: no leaked zombies, no stuck LWPs, no
// kernel panic.
func TestSoakManyFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := repro.NewSystem()
	// Soak with event tracing on everywhere: the default ring must absorb
	// the whole run without dropping anything.
	s.K.EnableKTraceAll(0)
	if err := s.Install("/bin/family", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_sleep	; child naps then exits
	movi r1, 40
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_fork	; second child crashes
	syscall
	cmpi r0, 0
	jne reap
	movi r1, 1
	movi r2, 0
	div r1, r2
reap:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}

	var parents []*kernel.Proc
	for i := 0; i < 25; i++ {
		p, err := s.Spawn("/bin/family", []string{fmt.Sprintf("family%d", i)},
			types.UserCred(100+i%5, 10))
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, p)
	}
	// Truss one family while the rest run free.
	tr := tools.NewTruss(s, io.Discard, types.RootCred())
	tr.FollowForks = true
	tr.Summary = true
	if err := tr.Attach(parents[0]); err != nil {
		t.Fatal(err)
	}
	// Interleave ps sweeps with progress.
	for sweep := 0; sweep < 5; sweep++ {
		if err := tools.PS(s.Client(types.RootCred()), io.Discard); err != nil {
			t.Fatal(err)
		}
		s.Run(200)
	}
	if err := tr.Run(10_000_000); err != nil {
		t.Fatalf("truss: %v", err)
	}
	for i, p := range parents {
		if _, err := s.WaitExit(p); err != nil {
			t.Fatalf("family %d stuck: %v", i, err)
		}
	}
	// Drain: eventually only the system processes and init remain.
	s.Run(100)
	var leftovers []string
	for _, q := range s.K.Procs() {
		if q.Pid > 2 && q.Comm != "init" {
			leftovers = append(leftovers, fmt.Sprintf("%d:%s:%v", q.Pid, q.Comm, q.State()))
		}
	}
	if len(leftovers) != 0 {
		t.Fatalf("leftover processes: %v", leftovers)
	}
	// The traced family's fork was followed and its crash observed.
	if tr.Counts(kernel.SysFork) < 2 {
		t.Fatalf("truss saw %d forks", tr.Counts(kernel.SysFork))
	}
	// The whole soak traced without losing a single event.
	st := s.K.KTraceStats()
	if st.Emitted == 0 {
		t.Fatal("tracing was on but nothing was recorded")
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d of %d trace events at the default ring size",
			st.Dropped, st.Emitted)
	}
}
