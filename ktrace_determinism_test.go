package repro_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/ktrace"
	"repro/internal/types"
	"repro/internal/vfs"
)

// familyProg forks twice; one child sleeps and exits, the other dies on a
// division fault; the parent reaps both. It exercises every event kind the
// trace records: syscalls, forks, faults, signals, exits, sched ticks.
const familyProg = `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_sleep	; first child naps then exits
	movi r1, 40
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_fork	; second child crashes
	syscall
	cmpi r0, 0
	jne reap
	movi r1, 1
	movi r2, 0
	div r1, r2
reap:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`

// readProcFile slurps one /procx file under root credentials.
func readProcFile(t *testing.T, s *repro.System, path string) []byte {
	t.Helper()
	b, err := s.Client(types.RootCred()).ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

// TestKTraceDeterminism boots the same multi-process scenario twice and
// demands byte-identical trace streams: the per-process file read mid-flight,
// the kernel-wide stream after the workload drains, and the counters page.
// The simulation advertises determinism; the trace is the oracle that checks
// it.
func TestKTraceDeterminism(t *testing.T) {
	run := func() (perproc, global, stats []byte) {
		s := repro.NewSystem(repro.Options{NCPU: 1}) // bit-for-bit replay: pin the deterministic scheduler
		s.K.EnableKTraceAll(1 << 20)
		if err := s.Install("/bin/family", familyProg, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
		var procs []*kernel.Proc
		for i := 0; i < 3; i++ {
			p, err := s.Spawn("/bin/family", []string{fmt.Sprintf("family%d", i)},
				types.UserCred(100+i, 10))
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, p)
		}
		// A fixed slice of scheduling: the per-process stream so far must
		// match across boots even with the workload still in flight.
		s.Run(3)
		if !procs[0].Alive() {
			t.Fatal("first family exited before the mid-flight read")
		}
		perproc = readProcFile(t, s, "/procx/"+fmt.Sprint(procs[0].Pid)+"/trace")
		for i, p := range procs {
			if _, err := s.WaitExit(p); err != nil {
				t.Fatalf("family %d stuck: %v", i, err)
			}
		}
		global = readProcFile(t, s, "/procx/trace")
		stats = readProcFile(t, s, "/procx/ktrace")
		return
	}

	p1, g1, st1 := run()
	p2, g2, st2 := run()
	if !bytes.Equal(p1, p2) {
		t.Errorf("per-process streams differ: %d vs %d bytes", len(p1), len(p2))
	}
	if !bytes.Equal(g1, g2) {
		t.Errorf("kernel-wide streams differ: %d vs %d bytes", len(g1), len(g2))
	}
	if !bytes.Equal(st1, st2) {
		t.Errorf("counters pages differ")
	}

	// The streams must be substantive and well-formed, or the comparison
	// proves nothing.
	evs, err := ktrace.Decode(g1)
	if err != nil {
		t.Fatalf("global stream does not decode: %v", err)
	}
	if len(evs) < 50 {
		t.Fatalf("global stream suspiciously small: %d events", len(evs))
	}
	kinds := map[ktrace.Kind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	for _, k := range []ktrace.Kind{ktrace.KSysEntry, ktrace.KSysExit,
		ktrace.KFork, ktrace.KExit, ktrace.KFault, ktrace.KSigPost,
		ktrace.KSigDeliver, ktrace.KLWPState} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in the global stream", k)
		}
	}
	st, err := ktrace.DecodeStats(st1)
	if err != nil {
		t.Fatalf("counters page does not decode: %v", err)
	}
	if st.Emitted == 0 || st.PerSys[kernel.SysFork] == 0 {
		t.Fatalf("counters page empty: %+v", st)
	}

	// The super-user gate on the kernel-wide stream holds.
	if _, err := s2ReadAsUser(t); err != vfs.ErrPerm {
		t.Fatalf("global trace readable without privilege: %v", err)
	}
}

// s2ReadAsUser attempts to open the kernel-wide stream unprivileged.
func s2ReadAsUser(t *testing.T) ([]byte, error) {
	s := repro.NewSystem()
	s.K.EnableKTraceAll(0)
	return s.Client(types.UserCred(100, 10)).ReadFile("/procx/trace")
}
