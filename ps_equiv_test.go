package repro_test

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"repro"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

// bootMixedTable builds a population exercising every row shape a sweep can
// meet: runners, a sleeper, a stopped process, a zombie, and processes owned
// by several users. The table is static once Run settles.
func bootMixedTable(t *testing.T) *repro.System {
	t.Helper()
	s := repro.NewSystem()
	spawn := func(name, prog string, uid, gid int) {
		t.Helper()
		if _, err := s.SpawnProg(name, prog, types.UserCred(uid, gid)); err != nil {
			t.Fatalf("spawn %s: %v", name, err)
		}
	}
	spawn("runner", "loop:\tjmp loop\n", 100, 10)
	spawn("sleeper", "\tmovi r0, SYS_pause\n\tsyscall\n", 100, 10)
	stopped, err := s.SpawnProg("stopped", "loop:\tjmp loop\n", types.UserCred(200, 20))
	if err != nil {
		t.Fatal(err)
	}
	spawn("keeper", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne spin
	movi r0, SYS_exit	; the child becomes a zombie: keeper never waits
	movi r1, 0
	syscall
spin:	jmp spin
`, 300, 30)
	s.Run(60)
	s.K.PostSignal(stopped, types.SIGSTOP)
	s.Run(10)
	return s
}

// remoteClient serves the system's namespace over a pipe and returns an RFS
// client on it: the same table seen through the remote file system.
func remoteClient(t *testing.T, s *repro.System, cred types.Cred) *rfs.Client {
	t.Helper()
	var lock sync.Mutex
	srv := rfs.NewServer(s.NS, &lock)
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(server)
	}()
	t.Cleanup(func() {
		client.Close()
		server.Close()
		<-done
	})
	return rfs.NewClient(&rfs.ConnTransport{Conn: client}, cred)
}

// render runs one sweep into a buffer.
func render(t *testing.T, sweep func(tools.ProcClient, *bytes.Buffer) error, cl tools.ProcClient) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sweep(cl, &buf); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return buf.Bytes()
}

// TestPSBatchedLegacyEquivalence is the output contract of the batched path:
// on a static table, ps via one PIOCSNAP and ps via the per-pid protocol
// print byte-identical listings — locally and over RFS, under root and under
// a user who sees only their own processes.
func TestPSBatchedLegacyEquivalence(t *testing.T) {
	s := bootMixedTable(t)
	creds := map[string]types.Cred{
		"root": types.RootCred(),
		"user": types.UserCred(100, 10),
	}
	for name, cred := range creds {
		cred := cred
		t.Run(name, func(t *testing.T) {
			local := s.Client(cred)
			remote := remoteClient(t, s, cred)
			batched := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.PS(cl, w) }, local)
			legacy := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.PSLegacy(cl, w) }, local)
			if !bytes.Equal(batched, legacy) {
				t.Errorf("local batched != legacy:\n%s---\n%s", batched, legacy)
			}
			rBatched := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.PS(cl, w) }, remote)
			rLegacy := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.PSLegacy(cl, w) }, remote)
			if !bytes.Equal(rBatched, rLegacy) {
				t.Errorf("remote batched != legacy:\n%s---\n%s", rBatched, rLegacy)
			}
			if !bytes.Equal(batched, rBatched) {
				t.Errorf("local != remote:\n%s---\n%s", batched, rBatched)
			}
			if len(bytes.TrimSpace(batched)) == 0 {
				t.Error("empty listing")
			}
		})
	}
}

// TestUsageBatchedLegacyEquivalence is the same contract for the usage sweep:
// FleetUsage through PIOCSNAP and FleetUsageLegacy through per-pid PIOCUSAGE
// print identical tables, locally and over RFS. Usage counters only move
// when the simulation steps, so the static table keeps them comparable.
func TestUsageBatchedLegacyEquivalence(t *testing.T) {
	s := bootMixedTable(t)
	local := s.Client(types.RootCred())
	remote := remoteClient(t, s, types.RootCred())
	batched := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.FleetUsage(cl, w) }, local)
	legacy := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.FleetUsageLegacy(cl, w) }, local)
	if !bytes.Equal(batched, legacy) {
		t.Errorf("local batched != legacy:\n%s---\n%s", batched, legacy)
	}
	rBatched := render(t, func(cl tools.ProcClient, w *bytes.Buffer) error { return tools.FleetUsage(cl, w) }, remote)
	if !bytes.Equal(batched, rBatched) {
		t.Errorf("local != remote:\n%s---\n%s", batched, rBatched)
	}
}

// TestSnapshotOverRFS drives PIOCSNAP itself through the wire codec: the
// records, the revision token and the churn bit must all survive the round
// trip, including a pid-filtered request.
func TestSnapshotOverRFS(t *testing.T) {
	s := bootMixedTable(t)
	remote := remoteClient(t, s, types.RootCred())
	rf, err := remote.Open("/proc", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	lf, err := s.Client(types.RootCred()).Open("/proc", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()

	var lsn, rsn procfs.PrSnap
	lsn.WithUsage, rsn.WithUsage = true, true
	if err := lf.Ioctl(procfs.PIOCSNAP, &lsn); err != nil {
		t.Fatal(err)
	}
	if err := rf.Ioctl(procfs.PIOCSNAP, &rsn); err != nil {
		t.Fatal(err)
	}
	if rsn.Rev != lsn.Rev || rsn.Churned != lsn.Churned {
		t.Fatalf("token skew: remote rev=%d churned=%v, local rev=%d churned=%v",
			rsn.Rev, rsn.Churned, lsn.Rev, lsn.Churned)
	}
	if len(rsn.Procs) != len(lsn.Procs) {
		t.Fatalf("record counts: remote %d, local %d", len(rsn.Procs), len(lsn.Procs))
	}
	for i := range lsn.Procs {
		if lsn.Procs[i] != rsn.Procs[i] {
			t.Fatalf("record %d skewed by the wire:\nlocal  %+v\nremote %+v",
				i, lsn.Procs[i], rsn.Procs[i])
		}
	}

	// A pid-filtered request survives the trip too.
	want := lsn.Procs[0].Info.Pid
	filtered := procfs.PrSnap{Pids: []int{want}}
	if err := rf.Ioctl(procfs.PIOCSNAP, &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Procs) != 1 || filtered.Procs[0].Info.Pid != want {
		t.Fatalf("filtered remote snapshot = %+v", filtered.Procs)
	}

	// Churn the table and pass the stale token back: the churn bit must
	// come back set through the codec.
	p, err := s.SpawnProg("late", "loop:\tjmp loop\n", types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	stale := procfs.PrSnap{Rev: rsn.Rev}
	if err := rf.Ioctl(procfs.PIOCSNAP, &stale); err != nil {
		t.Fatal(err)
	}
	if !stale.Churned {
		t.Fatal("table churned but the remote token did not notice")
	}
	seen := false
	for _, rec := range stale.Procs {
		seen = seen || rec.Info.Pid == p.Pid
	}
	if !seen {
		t.Fatal("newly spawned process missing from the re-snapshot")
	}
}
