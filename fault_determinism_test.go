package repro_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
)

// TestFaultPlanDeterminism boots the same workload twice under the same
// seeded fault storm and demands bit-identical outcomes: the kernel-wide
// ktrace stream, the trace counters page, the fault-site counters as
// /procx/faults reports them, and the final process table. A fault plan is a
// pure function of site-hit ordinals; since the simulation itself is
// deterministic, injecting through a fixed plan must not introduce any
// divergence — that is what makes a storm failure replayable.
func TestFaultPlanDeterminism(t *testing.T) {
	fault.Guard(t)
	run := func() (trace, stats, faults, ps []byte) {
		fault.Default.Reset()
		s := repro.NewSystem(repro.Options{NCPU: 1}) // bit-for-bit replay: pin the deterministic scheduler
		s.K.EnableKTraceAll(1 << 20)
		if err := s.Install("/bin/family", familyProg, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Install("/bin/io", ioProg, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.FS.WriteFile("/data", []byte("payload"), 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
		var procs []*kernel.Proc
		for i := 0; i < 2; i++ {
			fp, err := s.Spawn("/bin/family", []string{fmt.Sprintf("fam%d", i)},
				types.UserCred(100+i, 10))
			if err != nil {
				t.Fatal(err)
			}
			ip, err := s.Spawn("/bin/io", []string{fmt.Sprintf("io%d", i)},
				types.RootCred())
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, fp, ip)
		}
		plan := ""
		for i, name := range fault.Default.SiteNames() {
			plan += fmt.Sprintf("%s prob=150 seed=%d count=5\n", name, 1000+i*7)
		}
		armFaults(t, s, plan)
		for _, p := range procs {
			if _, err := s.WaitExit(p); err != nil {
				t.Fatalf("workload stuck under the storm: %v", err)
			}
		}
		assertInvariants(t, s)
		// The counters read must precede the reset; it is part of the
		// compared state.
		faults = readProcFile(t, s, "/procx/faults")
		trace = readProcFile(t, s, "/procx/trace")
		stats = readProcFile(t, s, "/procx/ktrace")
		var psBuf bytes.Buffer
		if err := tools.PS(s.Client(types.RootCred()), &psBuf); err != nil {
			t.Fatal(err)
		}
		ps = psBuf.Bytes()
		return
	}

	t1, s1, f1, p1 := run()
	t2, s2, f2, p2 := run()
	if !bytes.Equal(t1, t2) {
		t.Errorf("ktrace streams differ under identical fault plans: %d vs %d bytes",
			len(t1), len(t2))
	}
	if !bytes.Equal(s1, s2) {
		t.Errorf("trace counter pages differ under identical fault plans")
	}
	if !bytes.Equal(f1, f2) {
		t.Errorf("fault-site counters differ under identical fault plans:\n%s\nvs:\n%s", f1, f2)
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("final process tables differ under identical fault plans:\n%s\nvs:\n%s", p1, p2)
	}
	// The comparison proves nothing if the storm never fired.
	if !bytes.Contains(f1, []byte("injected=")) {
		t.Fatalf("faults page malformed:\n%s", f1)
	}
	var injected uint64
	for _, name := range fault.Default.SiteNames() {
		injected += fault.Default.Lookup(name).Injected()
	}
	if injected == 0 {
		t.Fatal("identical-plan runs injected nothing; determinism unproven")
	}
}
