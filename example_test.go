package repro_test

import (
	"fmt"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Boot a system, run a program, and stop it on demand through /proc.
func ExampleNewSystem() {
	sys := repro.NewSystem()
	sys.Install("/bin/spin", "loop:\tjmp loop\n", 0o755, 100, 10)
	p, _ := sys.Spawn("/bin/spin", nil, types.UserCred(100, 10))

	f, _ := sys.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	defer f.Close()
	var st kernel.ProcStatus
	f.Ioctl(procfs.PIOCSTOP, &st)
	fmt.Println("stopped:", st.Why)
	// Output: stopped: requested
}

// Trace a system call's entry, change its argument, and watch the result.
func ExampleSystem_OpenProc() {
	sys := repro.NewSystem()
	p, _ := sys.SpawnProg("doomed", `
	movi r0, SYS_exit
	movi r1, 1
	syscall
`, types.UserCred(100, 10))

	f, _ := sys.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	defer f.Close()
	var entry types.SysSet
	entry.Add(kernel.SysExit)
	f.Ioctl(procfs.PIOCSENTRY, &entry)

	var st kernel.ProcStatus
	f.Ioctl(procfs.PIOCWSTOP, &st)
	// The stop happens before the kernel fetched the arguments: rewrite
	// the exit code.
	st.Reg.R[1] = 7
	f.Ioctl(procfs.PIOCSREG, &st.Reg)
	f.Ioctl(procfs.PIOCRUN, nil)

	status, _ := sys.WaitExit(p)
	_, code := kernel.WIfExited(status)
	fmt.Println("exit code:", code)
	// Output: exit code: 7
}

// Read a process's memory by seeking to a virtual address.
func ExampleSystem_Client() {
	sys := repro.NewSystem()
	p, _ := sys.SpawnProg("greeter", `
loop:	jmp loop
.data
msg:	.asciz "paper reproduced"
`, types.UserCred(100, 10))
	sys.Run(2)

	f, _ := sys.OpenProc(p.Pid, vfs.ORead, types.RootCred())
	defer f.Close()
	syms, _ := p.ImageSyms()
	var msg uint32
	for _, s := range syms {
		if s.Name == "msg" {
			msg = s.Value
		}
	}
	buf := make([]byte, 16)
	f.Pread(buf, int64(msg))
	fmt.Println(string(buf))
	// Output: paper reproduced
}
