package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/ktrace"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// The fault matrix: every registered injection site is armed through the
// /procx/faults control file, the planned fault is driven to its trigger, and
// the revealed error path is checked three ways — the victim sees the right
// errno (or the right signal), the site's injection counter advanced, and the
// kernel's invariants hold afterwards. The storm test then runs random
// seeded plans over all sites at once.

// armFaults writes control text to /procx/faults under root credentials,
// exercising the same path rfsctl and remote tooling use.
func armFaults(t *testing.T, s *repro.System, text string) {
	t.Helper()
	f, err := s.Client(types.RootCred()).Open("/procx/faults", vfs.OWrite)
	if err != nil {
		t.Fatalf("open /procx/faults: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte(text)); err != nil {
		t.Fatalf("write /procx/faults %q: %v", text, err)
	}
}

// faultBoot builds a system with tracing on and one victim process spawned
// (but not yet run). Sites are armed by the caller after the spawn, because
// the spawn itself touches memfs and the new address space.
func faultBoot(t *testing.T, prog string) (*repro.System, *kernel.Proc) {
	t.Helper()
	fault.Guard(t)
	s := repro.NewSystem()
	s.K.EnableKTraceAll(1 << 18)
	if err := s.Install("/bin/victim", prog, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn("/bin/victim", []string{"victim"}, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// assertInvariants runs the post-storm invariant checker.
func assertInvariants(t *testing.T, s *repro.System) {
	t.Helper()
	if err := s.K.CheckInvariants(); err != nil {
		t.Fatalf("kernel invariants violated: %v", err)
	}
}

// assertInjected demands that the named site actually fired.
func assertInjected(t *testing.T, name string) {
	t.Helper()
	site := fault.Default.Lookup(name)
	if site == nil {
		t.Fatalf("site %s not registered", name)
	}
	if site.Injected() == 0 {
		t.Fatalf("site %s never injected (hits=%d)", name, site.Hits())
	}
}

// assertSysErrno demands a KSysExit event for (pid, sysnum) carrying errno.
func assertSysErrno(t *testing.T, s *repro.System, pid, sysnum int, want kernel.Errno) {
	t.Helper()
	evs, err := ktrace.Decode(readProcFile(t, s, "/procx/trace"))
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	for _, e := range evs {
		if e.Kind == ktrace.KSysExit && int(e.Pid) == pid && int(e.What) == sysnum {
			if e.B == uint32(want) {
				return
			}
		}
	}
	t.Fatalf("no %s exit with errno %v for pid %d in the trace",
		kernel.SyscallName(sysnum), want, pid)
}

// assertKilledBy demands the wait status records death by sig.
func assertKilledBy(t *testing.T, status, sig int) {
	t.Helper()
	ok, got, _ := kernel.WIfSignaled(status)
	if !ok || got != sig {
		t.Fatalf("status = %#x, want killed by %s", status, types.SigName(sig))
	}
}

// exitOK is the common tail: exit(0).
const exitOK = `
	movi r0, SYS_exit
	movi r1, 0
	syscall
`

func TestFaultMatrixKernelFork(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_fork
	syscall
`+exitOK)
	armFaults(t, s, fmt.Sprintf("kernel.fork nth=1 pid=%d", p.Pid))
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("victim status = %#x", status)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysFork, kernel.EAGAIN)
	assertInjected(t, "kernel.fork")
	assertInvariants(t, s)
}

func TestFaultMatrixKernelFD(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_creat
	la r1, path
	movi r2, 420
	syscall
`+exitOK+`
.data
path:	.asciz "/victim-out"
`)
	armFaults(t, s, fmt.Sprintf("kernel.fd nth=1 pid=%d", p.Pid))
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysCreat, kernel.EMFILE)
	assertInjected(t, "kernel.fd")
	assertInvariants(t, s)
}

func TestFaultMatrixKernelPipe(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_pipe
	syscall
`+exitOK)
	armFaults(t, s, fmt.Sprintf("kernel.pipe nth=1 pid=%d", p.Pid))
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysPipe, kernel.ENFILE)
	assertInjected(t, "kernel.pipe")
	assertInvariants(t, s)
}

func TestFaultMatrixKernelExec(t *testing.T) {
	fault.Guard(t)
	s := repro.NewSystem()
	if err := s.Install("/bin/victim", exitOK, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	// The next address-space build — our spawn — fails; the process slot is
	// rolled back and the spawn reports the error.
	armFaults(t, s, "kernel.exec nth=1")
	if _, err := s.Spawn("/bin/victim", []string{"victim"}, types.RootCred()); err == nil {
		t.Fatal("spawn succeeded with kernel.exec armed")
	}
	assertInjected(t, "kernel.exec")
	assertInvariants(t, s)
	// The system still works once the plan is spent.
	if p, err := s.Spawn("/bin/victim", []string{"victim"}, types.RootCred()); err != nil {
		t.Fatalf("respawn after spent plan: %v", err)
	} else if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
}

func TestFaultMatrixMemBrk(t *testing.T) {
	s, p := faultBoot(t, `
	la r1, end
	movi r2, 0
	movhi r2, 1
	add r1, r2
	movi r0, SYS_brk
	syscall
`+exitOK+`
.bss
end:	.space 4
`)
	armFaults(t, s, fmt.Sprintf("mem.brk nth=1 pid=%d", p.Pid))
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysBrk, kernel.ENOMEM)
	assertInjected(t, "mem.brk")
	assertInvariants(t, s)
}

func TestFaultMatrixMemMap(t *testing.T) {
	s, p := faultBoot(t, `
	movi r1, 0
	movi r2, 0
	movhi r2, 1
	movi r3, 3
	movi r4, 0
	movi r0, SYS_mmap
	syscall
`+exitOK)
	armFaults(t, s, fmt.Sprintf("mem.map nth=1 pid=%d", p.Pid))
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysMmap, kernel.ENOMEM)
	assertInjected(t, "mem.map")
	assertInvariants(t, s)
}

func TestFaultMatrixMemPage(t *testing.T) {
	// Storing into a never-touched bss page needs a fresh page frame; with
	// the allocation refused the store becomes an access fault and the
	// victim dies by SIGSEGV — never a Go panic, never a leak.
	s, p := faultBoot(t, `
	la r3, buf
	movi r4, 7
	st r4, [r3]
`+exitOK+`
.bss
buf:	.space 4096
`)
	armFaults(t, s, fmt.Sprintf("mem.page pid=%d", p.Pid))
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	assertKilledBy(t, status, types.SIGSEGV)
	assertInjected(t, "mem.page")
	assertInvariants(t, s)
}

func TestFaultMatrixMemCOW(t *testing.T) {
	// The first store into the file-backed data segment must copy the page;
	// refusing the copy kills the victim with SIGSEGV.
	s, p := faultBoot(t, `
	la r3, word
	movi r4, 7
	st r4, [r3]
`+exitOK+`
.data
word:	.asciz "abcd"
`)
	armFaults(t, s, fmt.Sprintf("mem.cow pid=%d", p.Pid))
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	assertKilledBy(t, status, types.SIGSEGV)
	assertInjected(t, "mem.cow")
	assertInvariants(t, s)
}

func TestFaultMatrixMemStack(t *testing.T) {
	// A store far below the stack would normally auto-grow the mapping;
	// with growth refused it is a bounds fault and SIGSEGV.
	s, p := faultBoot(t, `
	movspr r3
	movi r4, 0
	movhi r4, 3
	sub r3, r4
	movi r5, 99
	st r5, [r3]
`+exitOK)
	armFaults(t, s, fmt.Sprintf("mem.stack pid=%d", p.Pid))
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	assertKilledBy(t, status, types.SIGSEGV)
	assertInjected(t, "mem.stack")
	assertInvariants(t, s)
}

func TestFaultMatrixMemfsCreate(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_creat
	la r1, path
	movi r2, 420
	syscall
`+exitOK+`
.data
path:	.asciz "/victim-out"
`)
	// memfs operations are not process-attributed; an unscoped one-shot
	// plan armed after the spawn hits the victim's creat.
	armFaults(t, s, "memfs.create nth=1")
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysCreat, kernel.ENOSPC)
	assertInjected(t, "memfs.create")
	assertInvariants(t, s)
}

func TestFaultMatrixMemfsRead(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	mov r1, r0
	la r2, buf
	movi r3, 4
	movi r0, SYS_read
	syscall
`+exitOK+`
.data
path:	.asciz "/data"
.bss
buf:	.space 4
`)
	if err := s.FS.WriteFile("/data", []byte("payload"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	armFaults(t, s, "memfs.read nth=1")
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysRead, kernel.EIO)
	assertInjected(t, "memfs.read")
	assertInvariants(t, s)
}

func TestFaultMatrixMemfsWrite(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_creat
	la r1, path
	movi r2, 420
	syscall
	mov r1, r0
	la r2, msg
	movi r3, 1
	movi r0, SYS_write
	syscall
`+exitOK+`
.data
path:	.asciz "/victim-out"
msg:	.ascii "x"
`)
	armFaults(t, s, "memfs.write nth=1")
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	assertSysErrno(t, s, p.Pid, kernel.SysWrite, kernel.EIO)
	assertInjected(t, "memfs.write")
	assertInvariants(t, s)
}

func TestFaultMatrixProcfsIoctl(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_pause
	syscall
`+exitOK)
	armFaults(t, s, "procfs.ioctl nth=1")
	f, err := s.OpenProc(p.Pid, vfs.ORead, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var maps []procfs.PrMap
	if err := f.Ioctl(procfs.PIOCMAP, &maps); err != vfs.ErrAgain {
		t.Fatalf("PIOCMAP with procfs.ioctl armed: %v, want EAGAIN", err)
	}
	// The plan is spent; the same ioctl now succeeds.
	if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
		t.Fatalf("PIOCMAP after spent plan: %v", err)
	}
	assertInjected(t, "procfs.ioctl")
	assertInvariants(t, s)
}

// TestFaultMatrixProcfsSnap arms the batched snapshot's scratch allocation:
// PIOCSNAP on the /proc root surfaces EAGAIN, the caller retries, the retry
// succeeds with a full record set. The site carries no process context, so
// the plan is unscoped.
func TestFaultMatrixProcfsSnap(t *testing.T) {
	s, p := faultBoot(t, `
	movi r0, SYS_pause
	syscall
`+exitOK)
	s.Run(2)
	armFaults(t, s, "procfs.snap nth=1")
	f, err := s.Client(types.RootCred()).Open("/proc", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var sn procfs.PrSnap
	if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != vfs.ErrAgain {
		t.Fatalf("PIOCSNAP with procfs.snap armed: %v, want EAGAIN", err)
	}
	if len(sn.Procs) != 0 {
		t.Fatalf("failed snapshot left %d records behind", len(sn.Procs))
	}
	// The plan is spent; the retry fills the records.
	if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
		t.Fatalf("PIOCSNAP after spent plan: %v", err)
	}
	found := false
	for _, rec := range sn.Procs {
		found = found || rec.Info.Pid == p.Pid
	}
	if !found {
		t.Fatal("victim missing from the retried snapshot")
	}
	assertInjected(t, "procfs.snap")
	assertInvariants(t, s)
}

// ioProg opens, reads, creates and writes; every error is shrugged off and
// the program exits — a file-system workload for the storm.
const ioProg = `
	movi r0, SYS_open
	la r1, rpath
	movi r2, 1
	syscall
	mov r1, r0
	la r2, buf
	movi r3, 4
	movi r0, SYS_read
	syscall
	movi r0, SYS_creat
	la r1, wpath
	movi r2, 420
	syscall
	mov r1, r0
	la r2, buf
	movi r3, 4
	movi r0, SYS_write
	syscall
	movi r0, SYS_pipe
	syscall
	la r1, end
	movi r2, 0
	movhi r2, 1
	add r1, r2
	movi r0, SYS_brk
	syscall
	la r3, scratch
	movi r4, 7
	st r4, [r3]
` + exitOK + `
.data
rpath:	.asciz "/data"
wpath:	.asciz "/storm-out"
.bss
buf:	.space 8
scratch:	.space 4096
end:	.space 4
`

// TestFaultStorm arms every registered site with a seeded probabilistic plan
// and drives mixed process/file workloads through the storm, running the
// kernel-wide invariant checker after every injected fault. Nothing may
// panic, leak or corrupt — processes may only fail with sane errnos or die
// by signal.
func TestFaultStorm(t *testing.T) {
	fault.Guard(t)
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		fault.Default.Reset()
		s := repro.NewSystem()
		s.K.EnableKTraceAll(1 << 16)
		if err := s.Install("/bin/family", familyProg, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Install("/bin/io", ioProg, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.FS.WriteFile("/data", []byte("payload"), 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
		var procs []*kernel.Proc
		for i := 0; i < 4; i++ {
			path, cred := "/bin/family", types.UserCred(100+i, 10)
			if i%2 == 1 {
				// The io workload creates files in the root directory, so
				// it runs as root; a permission refusal would bypass the
				// memfs sites it exists to exercise.
				path, cred = "/bin/io", types.RootCred()
			}
			p, err := s.Spawn(path, []string{fmt.Sprintf("storm%d", i)}, cred)
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, p)
		}
		// Arm the whole catalog: distinct seeds per site per round, a small
		// per-mill rate, and a budget so the drain can finish.
		plan := ""
		for i, name := range fault.Default.SiteNames() {
			plan += fmt.Sprintf("%s prob=120 seed=%d count=8\n", name, round*131+i*17+1)
		}
		armFaults(t, s, plan)

		// An observer sweeps the table with PIOCSNAP while the storm rages:
		// the batched path must fail only with EAGAIN (its own site) and
		// never trip over mid-reap carcasses.
		snapF, err := s.Client(types.RootCred()).Open("/proc", vfs.ORead)
		if err != nil {
			t.Fatal(err)
		}
		alive := func() bool {
			for _, p := range procs {
				if p.Alive() {
					return true
				}
			}
			return false
		}
		last := uint64(0)
		var sn procfs.PrSnap
		for steps := 0; alive() && steps < 2_000_000; steps++ {
			s.Step()
			if steps%64 == 0 {
				switch err := snapF.Ioctl(procfs.PIOCSNAP, &sn); err {
				case nil, vfs.ErrAgain:
				default:
					t.Fatalf("round %d step %d: PIOCSNAP under storm: %v", round, steps, err)
				}
			}
			if inj := fault.Default.TotalInjected(); inj != last {
				last = inj
				assertInvariants(t, s)
			}
		}
		snapF.Close()
		if last == 0 {
			t.Fatalf("round %d: the storm injected nothing — the test proved nothing", round)
		}
		// Disarm and drain: every workload process must come to rest.
		fault.Default.Reset()
		for i, p := range procs {
			if _, err := s.WaitExit(p); err != nil {
				t.Fatalf("round %d: storm process %d stuck: %v", round, i, err)
			}
		}
		assertInvariants(t, s)
		if err := s.K.CheckInvariants(); err != nil {
			t.Fatalf("round %d: post-drain invariants: %v", round, err)
		}
	}
}
