// Compiled example: a program written in the bsl language is compiled for
// the simulated machine, traced with truss, and debugged by function name —
// the compiler's symbol table flows into the executable, the debugger picks
// it up from the process, and breakpoints land on source-level functions.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
)

const program = `
// Count primes below 50, logging progress to a file.
var logpath = "/tmp/primes.log";
var found[20];

func isPrime(n) {
    if (n < 2) { return 0; }
    var d = 2;
    while (d * d <= n) {
        if (n % d == 0) { return 0; }
        d = d + 1;
    }
    return 1;
}

func main() {
    var fd = sys(8, logpath, 438);   // creat
    var n = 2;
    var count = 0;
    while (n < 50) {
        if (isPrime(n)) {
            found[count] = n;
            count = count + 1;
            sys(4, fd, logpath, 1);  // a byte of "progress" per prime
        }
        n = n + 1;
    }
    sys(6, fd);                      // close
    return count;                    // 15 primes below 50
}
`

func main() {
	s := repro.NewSystem()
	if err := s.InstallBSL("/bin/primes", program, 0o755, 0, 0); err != nil {
		log.Fatal(err)
	}

	// First: truss it in summary mode.
	p, err := s.Spawn("/bin/primes", nil, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	tr := tools.NewTruss(s, nil, types.RootCred())
	tr.Summary = true
	if err := tr.TraceToExit(p, 10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== truss -c of the compiled program ==")
	tr.WriteSummary(os.Stdout)
	if ok, count := kernel.WIfExited(p.ExitStatus); ok {
		fmt.Printf("first run exited with %d primes\n\n", count)
	}

	// Second: debug a fresh run by source-level function name.
	p2, err := s.Spawn("/bin/primes", nil, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p2, types.RootCred())
	if err != nil {
		log.Fatal(err)
	}
	fn, ok := d.Lookup("isPrime")
	if !ok {
		log.Fatal("no isPrime symbol — the compiler should have emitted it")
	}
	if err := d.SetBreak(fn); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== breaking on isPrime(n); n is the argument on the stack ==")
	for hit := 0; hit < 5; hit++ {
		st, err := d.Cont()
		if err != nil {
			log.Fatal(err)
		}
		// At function entry the argument was pushed just above the return
		// address: [sp+4].
		arg, err := d.ReadMem(st.Reg.SP+4, 4)
		if err != nil {
			log.Fatal(err)
		}
		n := uint32(arg[0])<<24 | uint32(arg[1])<<16 | uint32(arg[2])<<8 | uint32(arg[3])
		fmt.Printf("hit %d: %s(n=%d)\n", hit+1, d.SymAt(st.Reg.PC), n)
	}
	if err := d.ClearBreak(fn); err != nil {
		log.Fatal(err)
	}
	d.Close()
	status, err := s.WaitExit(p2)
	if err != nil {
		log.Fatal(err)
	}
	_, count := kernel.WIfExited(status)
	fmt.Printf("\nsecond run completed normally: %d primes below 50\n", count)
	if count != 15 {
		log.Fatalf("expected 15 primes, got %d", count)
	}
}
