// Multithread example: the paper's proposed restructuring motivated by
// multi-threaded processes. A program creates LWPs sharing its address
// space; the hierarchical /proc exposes each as a sub-directory with its
// own status and control files, so a debugger can stop, inspect and resume
// one thread while its siblings keep running.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vfs"
)

const prog = `
	; create two worker LWPs, each incrementing its own counter
	movi r7, 0		; worker index
spawn:
	movi r0, SYS_mmap	; a stack for the worker
	movi r1, 0
	movi r2, 0
	movhi r2, 1		; 64K
	movi r3, 3
	movi r4, 0
	syscall
	mov r6, r0
	movi r2, 0
	movhi r2, 1
	add r6, r2		; stack top
	movi r0, SYS_lwp_create
	la r1, worker
	mov r2, r6
	syscall
	addi r7, 1
	cmpi r7, 2
	jne spawn
main:	jmp main		; the initial thread idles

worker:
	movi r0, SYS_lwp_self
	syscall
	mov r5, r0		; lwp id (2 or 3)
	addi r5, -2
	shl r5, 2		; counter slot offset
	la r3, counters
	add r3, r5
work:	ld r4, [r3]
	addi r4, 1
	st r4, [r3]
	jmp work
.data
counters: .word 0, 0
`

func main() {
	s := repro.NewSystem()
	p, err := s.SpawnProg("threads", prog, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	if err := s.RunUntil(func() bool { return len(p.LiveLWPs()) == 3 }, 500000); err != nil {
		log.Fatal(err)
	}
	s.Run(50)

	cl := s.Client(types.RootCred())
	dir := "/procx/" + procfs.PidName(p.Pid)

	// The hierarchy: thread-ids as sub-directories.
	lwps, err := cl.ReadDir(dir + "/lwp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process %d has %d threads of control:", p.Pid, len(lwps))
	for _, e := range lwps {
		fmt.Printf(" %s", e.Name)
	}
	fmt.Println()

	// Stop only LWP 2 through its own control file.
	lctl, err := cl.Open(dir+"/lwp/2/lwpctl", vfs.OWrite)
	if err != nil {
		log.Fatal(err)
	}
	defer lctl.Close()
	if _, err := lctl.Pwrite((&procfs2.CtlBuf{}).Stop().Bytes(), 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stopped lwp 2 through its lwpctl; siblings keep running")

	// Read both counters while lwp 2 is frozen and lwp 3 runs.
	as, err := cl.Open(dir+"/as", vfs.ORead)
	if err != nil {
		log.Fatal(err)
	}
	defer as.Close()
	syms, _ := p.ImageSyms()
	var counters uint32
	for _, sym := range syms {
		if sym.Name == "counters" {
			counters = sym.Value
		}
	}
	read2 := func() (uint32, uint32) {
		var buf [8]byte
		if _, err := as.Pread(buf[:], int64(counters)); err != nil {
			log.Fatal(err)
		}
		c2 := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
		c3 := uint32(buf[4])<<24 | uint32(buf[5])<<16 | uint32(buf[6])<<8 | uint32(buf[7])
		return c2, c3
	}
	a2, a3 := read2()
	s.Run(100)
	b2, b3 := read2()
	fmt.Printf("counter of frozen lwp 2: %d -> %d (unchanged)\n", a2, b2)
	fmt.Printf("counter of running lwp 3: %d -> %d (advancing)\n", a3, b3)
	if a2 != b2 || b3 <= a3 {
		log.Fatal("per-LWP stop did not isolate the thread")
	}

	// Its lwpstatus shows the stop; the process status shows 3 LWPs.
	lst, err := cl.Open(dir+"/lwp/2/lwpstatus", vfs.ORead)
	if err != nil {
		log.Fatal(err)
	}
	defer lst.Close()
	buf := make([]byte, 4096)
	n, _ := lst.Pread(buf, 0)
	st, err := procfs2.DecodeStatus(buf[:n])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lwpstatus: lwpid=%d why=%v nlwp=%d\n", st.LWPID, st.Why, st.NLWP)
	if st.Flags&kernel.PRIstop == 0 {
		log.Fatal("lwp 2 should be stopped on an event of interest")
	}

	// Resume lwp 2 and confirm it advances again.
	if _, err := lctl.Pwrite((&procfs2.CtlBuf{}).Run(0, 0).Bytes(), 0); err != nil {
		log.Fatal(err)
	}
	s.Run(100)
	c2, _ := read2()
	fmt.Printf("after resuming lwp 2: counter %d -> %d\n", b2, c2)
	if c2 <= b2 {
		log.Fatal("lwp 2 did not resume")
	}
	fmt.Println("per-thread control through the hierarchical /proc works")
}
