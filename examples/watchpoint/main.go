// Watchpoint example: the paper's proposed generalized data watchpoint
// facility. A program corrupts one byte of a data structure somewhere in a
// long run; a watchpoint on that byte (a watched area "of any size, down to
// a single byte") catches the guilty store exactly when it fires, while the
// many references to unwatched data that happen to fall in the same page
// are recovered transparently by the system.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

const prog = `
.entry main
main:
	la r3, table
	movi r5, 0
fill:	; a long loop writing all over the page (unwatched data)
	mov r4, r5
	shl r4, 2
	add r4, r3
	st r5, [r4]
	addi r5, 1
	cmpi r5, 200
	jne fill
	; ... and one store that corrupts the guarded cell
	la r3, guarded
	movi r4, 0x66
	st r4, [r3]
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
table:	 .space 800
guarded: .word 0
`

func main() {
	s := repro.NewSystem()
	p, err := s.SpawnProg("corruptor", prog, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	f, err := s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	syms, _ := p.ImageSyms()
	var guarded uint32
	for _, sym := range syms {
		if sym.Name == "guarded" {
			guarded = sym.Value
		}
	}

	// Trace FLTWATCH and set a 4-byte write watchpoint.
	var flts types.FltSet
	flts.Add(types.FLTWATCH)
	if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
		log.Fatal(err)
	}
	w := procfs.PrWatch{Vaddr: guarded, Size: 4, Mode: mem.ProtWrite}
	if err := f.Ioctl(procfs.PIOCSWATCH, &w); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watching 4 bytes at %#x for writes\n", guarded)

	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		log.Fatal(err)
	}
	if st.Why != kernel.WhyFaulted || st.What != types.FLTWATCH {
		log.Fatalf("unexpected stop %v/%d", st.Why, st.What)
	}
	fmt.Printf("caught the guilty store: pc=%#x, about to write r4=%#x\n",
		st.Reg.PC, st.Reg.R[4])

	var usage procfs.PrUsage
	if err := f.Ioctl(procfs.PIOCUSAGE, &usage); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the 200 same-page writes to unwatched data were recovered\n")
	fmt.Printf("transparently: %d recoveries, and the process stopped only when\n",
		usage.WatchRecover)
	fmt.Println("the watchpoint really fired.")
	if usage.WatchRecover < 190 {
		log.Fatalf("expected ~200 transparent recoveries, got %d", usage.WatchRecover)
	}

	// Let the store proceed: clear the watchpoint and the fault.
	if err := f.Ioctl(procfs.PIOCCWATCH, nil); err != nil {
		log.Fatal(err)
	}
	run := kernel.RunFlags{ClearFault: true}
	if err := f.Ioctl(procfs.PIOCRUN, &run); err != nil {
		log.Fatal(err)
	}
	if _, err := s.WaitExit(p); err != nil {
		log.Fatal(err)
	}
	fmt.Println("released; program completed normally")
}
