// Encapsulation example: complete encapsulation of the system call
// execution environment. The paper: a stop on entry occurs before the
// system has fetched the arguments, a stop on exit after the return values
// are stored; a process stopped on entry can be directed to abort the call
// and go directly to exit. "This combination of facilities enables complete
// encapsulation ... so that, for example, older system calls or alternate
// versions of them can be simulated entirely at user level" — obsolete
// facilities supported forever without cluttering up the operating system.
//
// Here the controlling process simulates an "obsolete" system call: the
// target invokes syscall number 150, which the kernel does not implement
// (ENOSYS); the controller intercepts every entry, aborts the kernel's
// processing, and manufactures the results of the legacy call.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// The legacy call: "oldgetstamp(n)" returns 1000+n, supposedly a kernel
// stamp counter that was removed decades ago.
const legacyNum = 150

const prog = `
	movi r6, 0		; accumulated stamps
	movi r7, 1		; argument
again:
	movi r0, 150		; the obsolete system call
	mov r1, r7
	syscall
	add r6, r0		; accumulate its result
	addi r7, 1
	cmpi r7, 4
	jne again
	mov r1, r6		; exit with the sum: (1001+1002+1003) & 0xFF
	movi r0, SYS_exit
	syscall
`

func main() {
	s := repro.NewSystem()
	p, err := s.SpawnProg("legacy", prog, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	f, err := s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Trace entry and exit of the obsolete call only.
	var set types.SysSet
	set.Add(legacyNum)
	if err := f.Ioctl(procfs.PIOCSENTRY, &set); err != nil {
		log.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCSEXIT, &set); err != nil {
		log.Fatal(err)
	}

	for {
		var st kernel.ProcStatus
		if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
			break // the target exited
		}
		switch st.Why {
		case kernel.WhySysEntry:
			arg := st.SysArgs[0]
			fmt.Printf("entry:  oldgetstamp(%d) intercepted — aborting kernel processing\n", arg)
			run := kernel.RunFlags{Abort: true}
			if err := f.Ioctl(procfs.PIOCRUN, &run); err != nil {
				log.Fatal(err)
			}
		case kernel.WhySysExit:
			// The aborted call stored EINTR; manufacture the legacy result.
			arg := st.SysArgs[0]
			result := 1000 + arg
			st.Reg.R[0] = result
			st.Reg.PSW &^= uint32(vcpu.FlagC) // success, not error
			if err := f.Ioctl(procfs.PIOCSREG, &st.Reg); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("exit:   manufactured return value %d\n", result)
			if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	status, err := s.WaitExit(p)
	if err != nil {
		log.Fatal(err)
	}
	_, code := kernel.WIfExited(status)
	want := (1001 + 1002 + 1003) & 0xFF
	fmt.Printf("target exited with %d (expected %d): the obsolete call was\n", code, want)
	fmt.Println("simulated entirely at user level, without the kernel knowing it.")
	if code != want {
		log.Fatal("encapsulation failed")
	}
}
