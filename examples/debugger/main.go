// Debugger example: the sophisticated-debugger workflow the /proc interface
// was designed to support. A buggy accumulator program is debugged by
// planting a breakpoint (a copy-on-write write of the breakpoint instruction
// into read/exec text), hitting it repeatedly (FLTBPT faulted stops —
// breakpoint debugging relieved of the ambiguities of signals), watching a
// variable evolve, and finally patching the bug in place.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
)

// The program sums 1..5 but the "bug" multiplies by 2 at the end.
const prog = `
.entry main
accumulate:
	la r3, total
	ld r4, [r3]
	add r4, r2
	st r4, [r3]
	ret
main:
	movi r2, 1
loop:	call accumulate
	addi r2, 1
	cmpi r2, 6
	jne loop
	la r3, total
	ld r1, [r3]
	movi r4, 2		; the bug: doubles the result
	mul r1, r4
	movi r0, SYS_exit
	syscall
.data
total:	.word 0
`

func main() {
	s := repro.NewSystem()
	p, err := s.SpawnProg("buggy", prog, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		log.Fatal(err)
	}

	fn, _ := d.Lookup("accumulate")
	total, _ := d.Lookup("total")
	if err := d.SetBreak(fn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakpoint planted at accumulate (%#x) — the write went through\n", fn)
	fmt.Println("copy-on-write, so the executable file and any other process running")
	fmt.Println("it are untouched.")

	for hit := 1; ; hit++ {
		st, err := d.Cont()
		if err != nil {
			break
		}
		if st.Why != kernel.WhyFaulted {
			log.Fatalf("unexpected stop %v", st.Why)
		}
		mem, _ := d.ReadMem(total, 4)
		fmt.Printf("hit %d: pc=%s r2=%d total=%d\n",
			hit, d.SymAt(st.Reg.PC), st.Reg.R[2], binary.BigEndian.Uint32(mem))
		if hit == 5 {
			// Last pass: patch the bug by rewriting the multiplier in the
			// target's data... it is an immediate in text, so patch the
			// instruction: mul r1, r4 -> nop. Find it two instructions
			// after the ld at main's tail via the symbol table.
			fmt.Println("patching the bug: replacing the stray mul with a nop")
			// Locate the mul by scanning text after 'main'.
			mainAddr, _ := d.Lookup("main")
			for addr := mainAddr; addr < mainAddr+0x80; addr += 4 {
				w, err := d.ReadWord(addr)
				if err != nil {
					break
				}
				if w>>24 == 0x07 { // OpMUL
					if err := d.WriteWord(addr, 0x26<<24); err != nil { // OpNOP
						log.Fatal(err)
					}
					fmt.Printf("patched %#x\n", addr)
				}
			}
			if err := d.ClearBreak(fn); err != nil {
				log.Fatal(err)
			}
		}
	}
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		log.Fatal(err)
	}
	_, code := kernel.WIfExited(status)
	fmt.Printf("program exited with %d (the unpatched program would print 30)\n", code)
	if code != 15 {
		log.Fatalf("expected the patched sum 15, got %d", code)
	}
}
