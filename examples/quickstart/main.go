// Quickstart: boot a simulated SVR4 system, run a program, and use /proc
// the way the paper describes — list the directory, open the process file,
// get status, read the memory map, stop and resume the process, and read
// its memory by seeking to a virtual address.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

func main() {
	// Boot: memfs root, kernel, init (pid 1), /proc mounted.
	s := repro.NewSystem()

	// Install and start a program under an ordinary user.
	prog := `
main:	movi r5, 0
loop:	addi r5, 1
	jmp loop
.data
greeting: .asciz "hello from simulated memory"
`
	p, err := s.SpawnProg("hello", prog, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	s.Run(10) // let it execute a little

	// "ls -l /proc" — Figure 1.
	fmt.Println("== /proc directory ==")
	root := s.Client(types.RootCred())
	if err := tools.LsProc(root, os.Stdout, nil); err != nil {
		log.Fatal(err)
	}

	// Open the process file and get status.
	f, err := s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== status of pid %d ==\npc=%#x sp=%#x vsize=%d lwps=%d\n",
		st.Pid, st.Reg.PC, st.Reg.SP, st.VSize, st.NLWP)

	// The memory map — Figure 2.
	fmt.Println("\n== memory map ==")
	if err := tools.PrMap(root, p.Pid, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Stop the process on demand, inspect, resume.
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstopped on demand: why=%v pc=%#x r5=%d\n", st.Why, st.Reg.PC, st.Reg.R[5])

	// Read process memory: lseek to the virtual address of interest.
	syms, _ := p.ImageSyms()
	var addr uint32
	for _, sym := range syms {
		if sym.Name == "greeting" {
			addr = sym.Value
		}
	}
	if _, err := f.Seek(int64(addr), vfs.SeekSet); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 27)
	if _, err := f.Read(buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read from %#x: %q\n", addr, buf)

	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		log.Fatal(err)
	}
	s.Run(10)
	var st2 kernel.ProcStatus
	f.Ioctl(procfs.PIOCSTATUS, &st2)
	fmt.Printf("resumed: r5 advanced %d -> %d\n", st.Reg.R[5], st2.Reg.R[5])

	// Clean shutdown.
	sig := types.SIGKILL
	f.Ioctl(procfs.PIOCKILL, &sig)
	if _, err := s.WaitExit(p); err != nil {
		log.Fatal(err)
	}
	fmt.Println("target killed; quickstart done")
}
