// Remote example: /proc over Remote File Sharing. Because processes are
// files under the VFS, "with appropriate permission it is possible to
// inspect, modify and control processes running on any machine in an RFS
// network" — an extension of capability for free.
//
// A "remote machine" is booted and exported over a real TCP loopback
// connection; the local side then lists its processes, stops one, reads its
// registers and memory, and resumes it — all through the wire protocol.
// The example also contrasts the two interfaces remotely: flat-/proc ioctls
// (which need the per-command marshalling registry) and the restructured
// status/ctl files (plain bytes).
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

func main() {
	// The remote machine.
	remote := repro.NewSystem()
	target, err := remote.SpawnProg("service", `
loop:	movi r5, 1
	add r6, r5
	jmp loop
`, types.UserCred(100, 10))
	if err != nil {
		log.Fatal(err)
	}
	remote.Run(20)

	// Export it over TCP.
	var lock sync.Mutex
	srv := rfs.NewServer(remote.NS, &lock)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	// The local debugger dials in.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	// The multiplexed transport pipelines tagged requests, so any number of
	// goroutines can share this one connection; a deadline bounds each call.
	mt, err := rfs.NewMuxTransport(conn)
	if err != nil {
		log.Fatal(err)
	}
	defer mt.Close()
	mt.Timeout = 5 * time.Second
	mt.Retries = 2
	cl := rfs.NewClient(mt, types.RootCred())

	// Remote process listing — each directory entry inspected by its own
	// goroutine, all pipelined on the single connection.
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("processes on the remote machine (inspected concurrently):")
	lines := make([]string, len(ents))
	var wg sync.WaitGroup
	for i, e := range ents {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lines[i] = fmt.Sprintf("  %s (uid %d, %d bytes)", e.Name, e.Attr.UID, e.Attr.Size)
			pf, err := rfs.NewClient(mt, types.RootCred()).Open("/proc/"+e.Name, vfs.ORead)
			if err != nil {
				return
			}
			defer pf.Close()
			var info kernel.PSInfo
			if err := pf.Ioctl(procfs.PIOCPSINFO, &info); err == nil {
				lines[i] = fmt.Sprintf("  %-8s pid %-3d uid %-4d vsize %-6d [%c]",
					info.Comm, info.Pid, info.UID, info.VSize, info.State)
			}
		}()
	}
	wg.Wait()
	for _, l := range lines {
		fmt.Println(l)
	}

	// Remote control through the flat interface (ioctl + codecs).
	name := "/proc/" + procfs.PidName(target.Pid)
	f, err := cl.Open(name, vfs.ORead|vfs.OWrite)
	if err != nil {
		log.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstopped remote pid %d: pc=%#x r6=%d\n", st.Pid, st.Reg.PC, st.Reg.R[6])
	word := make([]byte, 4)
	if _, err := f.Pread(word, 0x80000000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first text word, read over the wire: %02x%02x%02x%02x\n",
		word[0], word[1], word[2], word[3])
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		log.Fatal(err)
	}
	f.Close()

	// The same control through the restructured interface: no codecs, just
	// bytes over read and write — the property the paper's restructuring
	// is designed around.
	dir := "/procx/" + procfs.PidName(target.Pid)
	ctl, err := cl.Open(dir+"/ctl", vfs.OWrite)
	if err != nil {
		log.Fatal(err)
	}
	batch := (&procfs2.CtlBuf{}).Stop().Nice(1).Bytes()
	if _, err := ctl.Pwrite(batch, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrestructured interface: one remote write carried a batched")
	fmt.Println("stop+nice — two control operations, one network round trip.")
	statusFile, err := cl.Open(dir+"/status", vfs.ORead)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := statusFile.Pread(buf, 0)
	if err != nil {
		log.Fatal(err)
	}
	st2, err := procfs2.DecodeStatus(buf[:n])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status file read remotely: pid=%d why=%v r6=%d\n", st2.Pid, st2.Why, st2.Reg.R[6])
	if _, err := ctl.Pwrite((&procfs2.CtlBuf{}).Run(0, 0).Bytes(), 0); err != nil {
		log.Fatal(err)
	}
	ctl.Close()
	statusFile.Close()
	fmt.Printf("\ntotal protocol round trips: %d\n", cl.Ops())
}
