package repro_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/types"
)

const perfSpin = "loop:\tjmp loop\n"

const perfMill = `
loop:	movi r0, SYS_getpid
	syscall
	jmp loop
`

func spawnPerf(t *testing.T, s *repro.System, name, src string) *kernel.Proc {
	t.Helper()
	p, err := s.SpawnProg(name, src, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSMPStepAllocBudget pins the steady-state allocation cost of one SMP
// scheduling pass. With incrementally maintained run queues (enqueue on
// wakeup, lazy dequeue) and persistent per-CPU workers, a pass over a
// stable fleet allocates nothing; the budget of 2 leaves headroom for
// incidental runtime allocations. A regression here means the per-pass
// queue rebuild or the per-pass goroutine spawn has come back.
func TestSMPStepAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	if lockDebugEnabled {
		t.Skip("lock-order assertions allocate on every acquire")
	}
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("ncpu=%d", n), func(t *testing.T) {
			s := repro.NewSystem(repro.Options{NCPU: n})
			defer s.Close()
			for i := 0; i < 32; i++ {
				spawnPerf(t, s, fmt.Sprintf("spin%d", i), perfSpin)
			}
			s.Run(100) // workers started, queues populated, ktrace warm
			allocs := testing.AllocsPerRun(200, func() { s.Step() })
			if allocs > 2 {
				t.Errorf("ncpu=%d: %.1f allocs per pass, budget 2", n, allocs)
			}
		})
	}
}

// TestSMPMutexContentionSmoke checks the tentpole claim of the fine-grained
// locking rework with the runtime's own evidence: under a syscall-heavy SMP
// load, the global kernel lock must no longer dominate mutex wait time. The
// getpid mill dispatches through the lock-free syscall class, accounting
// flushes under per-process locks, and the global lock is left with the
// narrow fork/exit/timer work — so its share of sampled contention stays
// under budget. Before this rework every syscall serialized on one lock and
// the share was, by construction, close to 100%.
func TestSMPMutexContentionSmoke(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	s := repro.NewSystem(repro.Options{NCPU: 4})
	defer s.Close()
	for i := 0; i < 12; i++ {
		spawnPerf(t, s, fmt.Sprintf("mill%d", i), perfMill)
	}
	for i := 0; i < 20000; i++ {
		s.Step()
	}

	var recs []runtime.BlockProfileRecord
	for sz := 64; ; sz *= 2 {
		recs = make([]runtime.BlockProfileRecord, sz)
		n, ok := runtime.MutexProfile(recs)
		if ok {
			recs = recs[:n]
			break
		}
	}
	var total, global, events int64
	for _, r := range recs {
		isGlobal := false
		frames := runtime.CallersFrames(r.Stack())
		for {
			fr, more := frames.Next()
			if strings.Contains(fr.Function, "GlobalLock") ||
				strings.Contains(fr.Function, "GlobalUnlock") {
				isGlobal = true
			}
			if !more {
				break
			}
		}
		total += r.Cycles
		events += r.Count
		if isGlobal {
			global += r.Cycles
		}
	}
	if total == 0 {
		t.Logf("no mutex contention sampled across %d records — nothing waits", len(recs))
		return
	}
	share := float64(global) / float64(total)
	t.Logf("mutex contention: %d events sampled, global-lock wait share %.1f%%", events, share*100)
	// Assert only on a meaningful sample; a couple of stray events would
	// make the ratio noise.
	if events >= 10 && share > 0.90 {
		t.Errorf("global kernel lock accounts for %.1f%% of mutex wait (budget 90%%): the big kernel lock is back", share*100)
	}
}
