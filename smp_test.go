package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/types"
)

// TestSMPForkWaitSignal boots the SMP scheduler and runs several process
// families concurrently: each forks twice, one child sleeps and exits, one
// dies on a division fault, and the parent reaps both. This crosses every
// big-lock path at once — fork, wait, sleep/wake, fault-to-signal delivery,
// exit and reaping — with families spread across four CPUs.
func TestSMPForkWaitSignal(t *testing.T) {
	s := repro.NewSystem(repro.Options{NCPU: 4})
	defer s.Close()
	const family = `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_sleep	; first child naps then exits
	movi r1, 20
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_fork	; second child crashes
	syscall
	cmpi r0, 0
	jne reap
	movi r1, 1
	movi r2, 0
	div r1, r2
reap:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 7
	syscall
`
	var parents []*kernel.Proc
	for i := 0; i < 6; i++ {
		p, err := s.SpawnProg(fmt.Sprintf("fam%d", i), family, types.UserCred(100, 10))
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, p)
	}
	for _, p := range parents {
		status, err := s.WaitExit(p)
		if err != nil {
			t.Fatalf("pid %d: %v", p.Pid, err)
		}
		if ok, code := kernel.WIfExited(status); !ok || code != 7 {
			t.Fatalf("pid %d: status %#x, want clean exit 7", p.Pid, status)
		}
	}
	// Everything reaped: only init and the system processes remain alive.
	for _, p := range s.K.Procs() {
		if p.Alive() && !p.System && p.Pid != 1 {
			t.Fatalf("pid %d (%s) still alive after the storm", p.Pid, p.Comm)
		}
	}
}

// TestSMPBrkShootdown drives the remap path under SMP: a fleet of processes
// that repeatedly grow and shrink their break while their siblings run user
// code on other CPUs. Every brk bumps the address-space generation and runs
// the cross-CPU shootdown barrier; the programs verify their own memory
// after each move, so a stale translation surviving a shootdown shows up as
// a wrong value and a non-zero exit.
func TestSMPBrkShootdown(t *testing.T) {
	s := repro.NewSystem(repro.Options{NCPU: 4})
	defer s.Close()
	const grower = `
	la r6, heap
	movi r7, 30		; iterations
loop:	movi r0, SYS_brk
	mov r1, r6
	addi r1, 8192
	syscall			; grow the break two pages past heap
	mov r2, r6
	addi r2, 4096		; a page inside the growth
	movi r3, 99
	st r3, [r2]		; write through the fresh mapping
	ld r4, [r2]
	sub r4, r3
	cmpi r4, 0
	jne bad			; value did not round-trip
	movi r0, SYS_brk
	mov r1, r6
	syscall			; shrink back: pages dropped, generation bumped
	movi r5, 1
	sub r7, r5
	cmpi r7, 0
	jgt loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
bad:	movi r0, SYS_exit
	movi r1, 1
	syscall
.bss
heap:	.space 8
`
	var procs []*kernel.Proc
	for i := 0; i < 5; i++ {
		p, err := s.SpawnProg(fmt.Sprintf("grow%d", i), grower, types.UserCred(100, 10))
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	for _, p := range procs {
		status, err := s.WaitExit(p)
		if err != nil {
			t.Fatalf("pid %d: %v", p.Pid, err)
		}
		if ok, code := kernel.WIfExited(status); !ok || code != 0 {
			t.Fatalf("pid %d: status %#x — stale translation after shootdown", p.Pid, status)
		}
	}
}
