// Command prusage is a performance monitor built on the paper's proposed
// resource usage and page-data interfaces (PIOCUSAGE and PIOCPGD): it
// samples a memory-churning workload at intervals and prints per-interval
// deltas of user/system time, system calls, faults, and page-level modified
// information.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

const workload = `
; touch memory in a strided loop, occasionally making system calls
	movi r0, SYS_brk	; grow the break by 128K
	la r1, endbss
	movi r2, 0
	movhi r2, 2
	add r1, r2
	syscall
	la r6, endbss		; churn pointer
	movi r7, 0
churn:
	st r7, [r6]
	addi r6, 0x1000		; a new page every store
	addi r7, 1
	mov r2, r7
	movi r3, 7
	and r2, r3
	cmpi r2, 0
	jne nosys
	movi r0, SYS_getpid	; a syscall every 8 pages
	syscall
nosys:
	cmpi r7, 28
	jne churn
	movi r0, SYS_sleep	; rest a moment each wrap (voluntary switch)
	movi r1, 5
	syscall
	la r6, endbss		; wrap and keep churning forever
	movi r7, 0
	jmp churn
.bss
endbss:	.space 4
`

func main() {
	fleet := flag.Int("fleet", 0, "spawn N churn processes and print one usage line per process")
	legacy := flag.Bool("legacy", false, "with -fleet: per-pid PIOCUSAGE sweep instead of PIOCSNAP")
	flag.Parse()

	s := repro.NewSystem()
	if *fleet > 0 {
		fleetReport(s, *fleet, *legacy)
		return
	}
	p, err := s.SpawnProg("churn", workload, types.UserCred(100, 10))
	if err != nil {
		fmt.Fprintln(os.Stderr, "prusage:", err)
		os.Exit(1)
	}
	f, err := s.OpenProc(p.Pid, vfs.ORead, types.RootCred())
	if err != nil {
		fmt.Fprintln(os.Stderr, "prusage:", err)
		os.Exit(1)
	}
	defer f.Close()

	fmt.Printf("sampling pid %d (%s) at intervals:\n", p.Pid, p.Comm)
	mon := &tools.UsageMonitor{F: f, Out: os.Stdout}
	for i := 0; i < 8; i++ {
		if _, err := mon.Report(s.K.Now()); err != nil {
			fmt.Fprintln(os.Stderr, "prusage:", err)
			os.Exit(1)
		}
		s.Run(40) // the sampling interval
	}
	final, _ := tools.SampleUsage(f, s.K.Now())
	fmt.Printf("\ntotals: %d syscalls, %d minor faults, %d cow faults, %d voluntary + %d involuntary switches\n",
		final.Usage.Syscalls, final.Usage.MinorFaults, final.Usage.COWFaults,
		final.Usage.VolCtx, final.Usage.InvolCtx)
}

// fleetReport spawns a fleet of churners, lets them run a while, and prints
// the whole-system usage table — batched through PIOCSNAP unless -legacy
// asked for the per-pid sweep.
func fleetReport(s *repro.System, n int, legacy bool) {
	for i := 0; i < n; i++ {
		if _, err := s.SpawnProg(fmt.Sprintf("churn%d", i), workload, types.UserCred(100+i%8, 10)); err != nil {
			fmt.Fprintln(os.Stderr, "prusage:", err)
			os.Exit(1)
		}
	}
	s.Run(120)
	sweep := tools.FleetUsage
	if legacy {
		sweep = tools.FleetUsageLegacy
	}
	if err := sweep(s.Client(types.RootCred()), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prusage:", err)
		os.Exit(1)
	}
}
