// Command truss traces the execution of a simulated program, producing a
// symbolic report of the system calls it executes, the faults it encounters
// and the signals it receives. With -f it follows the execution of child
// processes as well. Given a file argument, the file is assembled and run;
// otherwise a built-in demonstration workload (which forks, does file I/O,
// and takes a fault) is traced.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
)

const demo = `
; demonstration workload: file I/O, a fork, and a machine fault
	movi r0, SYS_getpid
	syscall
	movi r0, SYS_creat
	la r1, path
	movi r2, 0x1B6		; 0666
	syscall
	mov r6, r0
	movi r0, SYS_write
	mov r1, r6
	la r2, msg
	movi r3, 6
	syscall
	movi r0, SYS_close
	mov r1, r6
	syscall
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_getuid	; child
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_open	; fails: ENOENT
	la r1, nopath
	movi r2, 1
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
path:	.asciz "/tmp/truss.out"
msg:	.ascii "hello\n"
nopath:	.asciz "/no/such"
`

func main() {
	follow := flag.Bool("f", false, "follow children created by fork/vfork")
	summary := flag.Bool("c", false, "count calls, faults and signals instead of reporting each")
	legacy := flag.Bool("legacy", false, "use the stop-and-poll /proc loop instead of the kernel event trace")
	flag.Parse()

	src := demo
	name := "demo"
	isBSL := false
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "truss:", err)
			os.Exit(1)
		}
		src = string(data)
		name = "a.out"
		isBSL = strings.HasSuffix(flag.Arg(0), ".b")
	}

	s := repro.NewSystem()
	install := s.Install
	if isBSL {
		install = s.InstallBSL
	}
	if err := install("/bin/"+name, src, 0o755, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, "truss:", err)
		os.Exit(1)
	}
	p, err := s.Spawn("/bin/"+name, nil, types.UserCred(100, 10))
	if err != nil {
		fmt.Fprintln(os.Stderr, "truss:", err)
		os.Exit(1)
	}
	tr := tools.NewTruss(s, os.Stdout, types.RootCred())
	tr.FollowForks = *follow
	tr.Summary = *summary
	tr.UseTrace = !*legacy
	if err := tr.TraceToExit(p, 10_000_000); err != nil {
		fmt.Fprintln(os.Stderr, "truss:", err)
		os.Exit(1)
	}
	if *summary {
		tr.WriteSummary(os.Stdout)
	}
}
