// Command rfsd boots a simulated system with a few processes and exports
// its name space — including /proc and /procx — over TCP via the RFS
// protocol, so that rfsctl (or any protocol client) can inspect and control
// its processes from another OS process entirely.
//
//	rfsd [-addr 127.0.0.1:7909] [-workers 4]
//
// The simulation keeps running in the background between requests, so
// remote observers see the processes making progress. Each connection is
// served in compat mode: multiplexing clients (rfsctl) get the pipelined
// tagged protocol with -workers concurrent dispatchers, while legacy
// stop-and-wait clients are detected by the missing handshake and served
// one exchange at a time.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/rfs"
	"repro/internal/types"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7909", "listen address")
	workers := flag.Int("workers", 4, "concurrent request dispatchers per multiplexed connection")
	flag.Parse()

	s := repro.NewSystem()
	boot := []struct {
		name string
		uid  int
		src  string
	}{
		{"ticker", 100, `
loop:	movi r0, SYS_sleep
	movi r1, 50
	syscall
	la r3, ticks
	ld r4, [r3]
	addi r4, 1
	st r4, [r3]
	jmp loop
.data
ticks:	.word 0
`},
		{"cruncher", 200, `
loop:	addi r5, 1
	jmp loop
`},
	}
	for _, b := range boot {
		if _, err := s.SpawnProg(b.name, b.src, types.UserCred(b.uid, b.uid/10)); err != nil {
			fmt.Fprintln(os.Stderr, "rfsd:", err)
			os.Exit(1)
		}
	}

	var lock sync.Mutex
	srv := rfs.NewServer(s.NS, &lock)
	srv.MuxWorkers = *workers

	// Keep the simulation ticking between protocol requests.
	go func() {
		for {
			lock.Lock()
			s.Run(20)
			lock.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfsd:", err)
		os.Exit(1)
	}
	fmt.Printf("rfsd: exporting /proc of a simulated system on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfsd:", err)
			os.Exit(1)
		}
		go func() {
			defer conn.Close()
			srv.ServeConn(conn)
		}()
	}
}
