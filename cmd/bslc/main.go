// Command bslc is the compiler driver for the bsl language: it compiles a
// .b source file to an xout executable image (or, with -S, prints the
// generated assembly), completing the toolchain for the simulated system.
//
//	bslc prog.b            write prog.xout
//	bslc -S prog.b         print the generated assembly
//	bslc -run prog.b       compile, boot a system, run, report the exit code
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/bsl"
	"repro/internal/kernel"
	"repro/internal/types"
)

func main() {
	emitAsm := flag.Bool("S", false, "print generated assembly instead of an image")
	runIt := flag.Bool("run", false, "compile and run on a freshly booted system")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bslc [-S|-run] prog.b")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bslc:", err)
		os.Exit(1)
	}
	src := string(data)

	if *emitAsm {
		asmSrc, err := bsl.Compile(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bslc:", err)
			os.Exit(1)
		}
		fmt.Print(asmSrc)
		return
	}
	img, err := bsl.CompileToImage(src, kernel.Predefs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bslc:", err)
		os.Exit(1)
	}
	if *runIt {
		s := repro.NewSystem()
		if err := s.FS.WriteFile("/bin/a.out", img.Marshal(), 0o755, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, "bslc:", err)
			os.Exit(1)
		}
		p, err := s.Spawn("/bin/a.out", nil, types.UserCred(100, 10))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bslc:", err)
			os.Exit(1)
		}
		status, err := s.WaitExit(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bslc:", err)
			os.Exit(1)
		}
		if ok, code := kernel.WIfExited(status); ok {
			fmt.Printf("exit %d\n", code)
			return
		}
		if ok, sig, core := kernel.WIfSignaled(status); ok {
			suffix := ""
			if core {
				suffix = " (core dumped)"
			}
			fmt.Printf("killed by %s%s\n", types.SigName(sig), suffix)
		}
		return
	}
	out := strings.TrimSuffix(path, ".b") + ".xout"
	if err := os.WriteFile(out, img.Marshal(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bslc:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes, %d symbols)\n", out, len(img.Marshal()), len(img.Syms))
}
