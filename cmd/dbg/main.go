// Command dbg is a small breakpoint debugger built on /proc, demonstrating
// the interface the paper designed for: breakpoints planted through
// copy-on-write address-space writes, fielded as FLTBPT faulted stops,
// single-stepping via PRSTEP/FLTTRACE, register and memory inspection.
//
// It reads commands from standard input (so it can be driven by a script):
//
//	b <symbol|hexaddr>   set a breakpoint
//	d <symbol|hexaddr>   delete a breakpoint
//	c                    continue to the next stop
//	s                    single-step one instruction
//	r                    print registers
//	x <symbol|hexaddr>   examine a word of memory
//	l                    list symbols
//	u [symbol|hexaddr]   disassemble 8 instructions (default: at the PC)
//	m                    print the memory map
//	q                    quit (detach and let the target run)
//
// Given a file argument, the file is assembled and debugged; otherwise a
// built-in demonstration program is used.
//
// With -replay <artifact>, dbg instead loads a recording produced by the
// replay recorder and opens the time-travel REPL (see replay.go): goto,
// reverse-step, reverse-continue, event breakpoints, memory watchpoints.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vcpu"
)

const demo = `
.entry main
fib:	; r1 = fib(r1), iterative
	movi r2, 0
	movi r3, 1
	cmpi r1, 0
	je fib_zero
fib_loop:
	mov r4, r3
	add r3, r2
	mov r2, r4
	addi r1, -1
	cmpi r1, 0
	jne fib_loop
	mov r1, r2
	ret
fib_zero:
	movi r1, 0
	ret
main:
	movi r1, 10
	call fib
	movi r0, SYS_exit
	syscall
`

func main() {
	if len(os.Args) > 2 && os.Args[1] == "-replay" {
		replayMain(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "-record" {
		recordMain(os.Args[2])
		return
	}
	src := demo
	name := "demo"
	isBSL := false
	if len(os.Args) > 1 {
		data, err := os.ReadFile(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbg:", err)
			os.Exit(1)
		}
		src = string(data)
		name = "a.out"
		isBSL = strings.HasSuffix(os.Args[1], ".b")
	}
	s := repro.NewSystem()
	install := s.Install
	if isBSL {
		install = s.InstallBSL
	}
	if err := install("/bin/"+name, src, 0o755, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, "dbg:", err)
		os.Exit(1)
	}
	p, err := s.Spawn("/bin/"+name, nil, types.UserCred(100, 10))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbg:", err)
		os.Exit(1)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbg:", err)
		os.Exit(1)
	}
	// Pick up shared-library symbol tables through PIOCOPENM.
	d.LoadMappedSymbols()
	fmt.Printf("debugging %s (pid %d); 'b main' 'c' 'r' 's' 'x <sym>' 'q'\n", name, p.Pid)

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("dbg> ")
		if !in.Scan() {
			break
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "q":
			d.Close()
			if status, err := s.WaitExit(p); err == nil {
				report(status)
			}
			return
		case "b", "d", "x":
			if len(fields) < 2 {
				fmt.Println("usage:", fields[0], "<symbol|hexaddr>")
				continue
			}
			addr, ok := resolve(d, fields[1])
			if !ok {
				fmt.Println("no such symbol:", fields[1])
				continue
			}
			switch fields[0] {
			case "b":
				if err := d.SetBreak(addr); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Printf("breakpoint at %s (%#x)\n", d.SymAt(addr), addr)
				}
			case "d":
				if err := d.ClearBreak(addr); err != nil {
					fmt.Println("error:", err)
				}
			case "x":
				w, err := d.ReadWord(addr)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("%#x: %#08x  %s\n", addr, w, vcpu.Disasm(w, addr))
			}
		case "c":
			st, err := d.Cont()
			if err != nil {
				if err == kernel.ErrNoProcess || !p.Alive() {
					report(p.ExitStatus)
					return
				}
				fmt.Println("error:", err)
				continue
			}
			printStop(d, st)
		case "s":
			st, err := d.StepInstr()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printStop(d, st)
		case "r":
			regs, err := d.Regs()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(regs)
		case "l":
			for _, sym := range d.Syms {
				fmt.Printf("%#08x %s\n", sym.Value, sym.Name)
			}
		case "u":
			// Disassemble 8 instructions from a symbol/address (default PC).
			var addr uint32
			if len(fields) > 1 {
				var ok bool
				if addr, ok = resolve(d, fields[1]); !ok {
					fmt.Println("no such symbol:", fields[1])
					continue
				}
			} else {
				regs, err := d.Regs()
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				addr = regs.PC
			}
			for i := 0; i < 8; i++ {
				a := addr + uint32(4*i)
				w, err := d.ReadWord(a)
				if err != nil {
					break
				}
				fmt.Printf("%#08x <%s>:\t%s\n", a, d.SymAt(a), vcpu.Disasm(w, a))
			}
		case "m":
			tools.PrMap(s.Client(types.RootCred()), p.Pid, os.Stdout)
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
	d.Close()
}

func resolve(d *tools.Debugger, s string) (uint32, bool) {
	if v, ok := d.Lookup(s); ok {
		return v, true
	}
	if v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32); err == nil {
		return uint32(v), true
	}
	return 0, false
}

func printStop(d *tools.Debugger, st kernel.ProcStatus) {
	fmt.Printf("stopped: %v/%d at %s (pc=%#x)\n", st.Why, st.What, d.SymAt(st.Reg.PC), st.Reg.PC)
}

func report(status int) {
	if ok, code := kernel.WIfExited(status); ok {
		fmt.Printf("process exited with status %d\n", code)
		return
	}
	if ok, sig, core := kernel.WIfSignaled(status); ok {
		suffix := ""
		if core {
			suffix = " (core dumped)"
		}
		fmt.Printf("process killed by %s%s\n", types.SigName(sig), suffix)
	}
}
