// Time-travel mode: dbg -replay <artifact> loads a recording made by the
// replay recorder and opens a REPL that can move through the run in either
// direction. Reverse motion is nearest-checkpoint restore plus forward
// re-execution; breakpoints are classes of recorded trace events, and
// watchpoints compare process memory pass by pass. dbg -record <artifact>
// records the built-in fault-storm demonstration for the REPL to chew on.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ktrace"
	"repro/internal/procfs2"
	"repro/internal/replay"
	"repro/internal/types"
)

const replayHelp = `commands:
  i                     recording summary (steps, events, ops, checkpoints)
  g <step>              goto a step ordinal (forward or backward)
  s [n]                 step forward n passes (default 1)
  rs [n]                reverse-step n passes (default 1)
  c                     continue to the next breakpoint/watchpoint hit
  rc                    reverse-continue to the previous hit
  b <kind> [what] [pid] breakpoint: fault|sigpost|sigdeliver|sysentry|sysexit|
                        fork|exit|any; what/pid narrow it (what=N pid=N)
  w <pid> <hexaddr> <n> watch n bytes of pid's memory
  bl                    list breakpoints and watchpoints
  bd                    delete all breakpoints and watchpoints
  ev [n]                show the last n recorded events up to here (default 10)
  ps                    process table at the current position
  q                     quit`

// breakKinds maps REPL names onto trace event classes; "any" matches every
// kind and is useful with a pid filter.
var breakKinds = map[string]ktrace.Kind{
	"any":        ktrace.KNone,
	"sysentry":   ktrace.KSysEntry,
	"syscall":    ktrace.KSysEntry,
	"sysexit":    ktrace.KSysExit,
	"fault":      ktrace.KFault,
	"sigpost":    ktrace.KSigPost,
	"signal":     ktrace.KSigPost,
	"sigdeliver": ktrace.KSigDeliver,
	"fork":       ktrace.KFork,
	"exit":       ktrace.KExit,
}

// stormSrc is the demonstration workload for -record: fork twice, one child
// sleeps and exits, the other dies on a division fault, the parent reaps
// both — every trace event kind in one program.
const stormSrc = `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_sleep	; first child naps then exits
	movi r1, 40
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_fork	; second child crashes
	syscall
	cmpi r0, 0
	jne reap
	movi r1, 1
	movi r2, 0
	div r1, r2
reap:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`

// recordMain records the demonstration fault-storm soak: two process
// families, a pid-scoped fault plan on the first, a control-message kill of
// the second, and enough unconditional passes to ride the clock through the
// sleepers' naps.
func recordMain(path string) {
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbg:", err)
			os.Exit(1)
		}
	}
	rec := replay.NewRecorder(replay.Options{})
	die(rec.Install("/bin/family", stormSrc, 0o755, 0, 0))
	p0, err := rec.Spawn("/bin/family", []string{"family"}, types.UserCred(100, 10))
	die(err)
	die(rec.ArmFaults(fmt.Sprintf("kernel.fork nth=2 pid=%d", p0.Pid)))
	for i := 0; i < 20; i++ {
		rec.Step()
	}
	p1, err := rec.Spawn("/bin/family", []string{"family"}, types.UserCred(101, 10))
	die(err)
	for i := 0; i < 3; i++ {
		rec.Step()
	}
	die(rec.Ctl(p1.Pid, (&procfs2.CtlBuf{}).Kill(types.SIGUSR1).Bytes()))
	_, err = rec.WaitExit(p0)
	die(err)
	_, err = rec.WaitExit(p1)
	die(err)
	for i := 0; i < 80; i++ {
		rec.Step()
	}
	art, err := rec.Finish()
	die(err)
	die(art.WriteFile(path))
	fmt.Printf("recorded %d steps, %d events, %d ops to %s\n",
		art.Steps, len(art.Events), len(art.Ops), path)
}

func replayMain(path string) {
	art, err := replay.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbg:", err)
		os.Exit(1)
	}
	rp := replay.NewReplayer(art)
	sess := replay.NewSession(rp)
	fmt.Printf("replaying %s: %d steps, %d events, %d ops; 'i' 'c' 'rc' 'g <step>' 'q'\n",
		path, art.Steps, len(art.Events), len(art.Ops))

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("replay:%d> ", rp.Step())
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "q":
			return
		case "h", "help", "?":
			fmt.Println(replayHelp)
		case "i":
			fmt.Printf("steps %d/%d  events %d  ops %d  checkpoints %v\n",
				rp.Step(), rp.Steps(), len(art.Events), len(art.Ops), rp.Checkpoints())
		case "g":
			if len(fields) < 2 {
				fmt.Println("usage: g <step>")
				continue
			}
			n, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := rp.Goto(n); err != nil {
				fmt.Println("error:", err)
			}
		case "s", "rs":
			n := 1
			if len(fields) > 1 {
				if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
					n = v
				}
			}
			for i := 0; i < n; i++ {
				var err error
				if fields[0] == "s" {
					err = sess.StepForward()
				} else {
					err = sess.ReverseStep()
				}
				if err != nil {
					fmt.Println("error:", err)
					break
				}
			}
		case "c", "rc":
			var stop *replay.Stop
			var err error
			if fields[0] == "c" {
				stop, err = sess.Continue()
			} else {
				stop, err = sess.ReverseContinue()
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(stop)
		case "b":
			if len(fields) < 2 {
				fmt.Println("usage: b <kind> [what=N] [pid=N]")
				continue
			}
			kind, ok := breakKinds[fields[1]]
			if !ok {
				fmt.Println("unknown event kind:", fields[1])
				continue
			}
			bp := replay.Breakpoint{Kind: kind, What: -1}
			for _, f := range fields[2:] {
				if v, ok := strings.CutPrefix(f, "what="); ok {
					if n, err := strconv.Atoi(v); err == nil {
						bp.What = int32(n)
					}
				}
				if v, ok := strings.CutPrefix(f, "pid="); ok {
					if n, err := strconv.Atoi(v); err == nil {
						bp.Pid = n
					}
				}
			}
			sess.Breaks = append(sess.Breaks, bp)
			fmt.Printf("breakpoint %d: %s\n", len(sess.Breaks)-1, bp)
		case "w":
			if len(fields) < 4 {
				fmt.Println("usage: w <pid> <hexaddr> <len>")
				continue
			}
			pid, err1 := strconv.Atoi(fields[1])
			addr, err2 := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 32)
			n, err3 := strconv.ParseUint(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil || n == 0 {
				fmt.Println("usage: w <pid> <hexaddr> <len>")
				continue
			}
			w := &replay.Watch{Pid: pid, Addr: uint32(addr), Len: uint32(n)}
			sess.Watches = append(sess.Watches, w)
			fmt.Printf("watchpoint %d: %s\n", len(sess.Watches)-1, w)
		case "bl":
			for i, b := range sess.Breaks {
				fmt.Printf("break %d: %s\n", i, b)
			}
			for i, w := range sess.Watches {
				fmt.Printf("watch %d: %s\n", i, w)
			}
		case "bd":
			sess.Breaks, sess.Watches = nil, nil
		case "ev":
			n := 10
			if len(fields) > 1 {
				if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
					n = v
				}
			}
			// The events recorded up to (not including) the current step are
			// the ones that have "already happened" here.
			end := 0
			for end < len(art.Events) && art.EvSteps[end] < rp.Step() {
				end++
			}
			for i := max(0, end-n); i < end; i++ {
				fmt.Printf("[%d @step %d] %s\n", i, art.EvSteps[i], replay.FmtEvent(art.Events[i]))
			}
		case "ps":
			os.Stdout.Write(replay.EncodeTable(rp.System().K))
		default:
			fmt.Println("unknown command:", fields[0], "('h' for help)")
		}
	}
}
