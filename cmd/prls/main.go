// Command prls reproduces the paper's Figure 1: "ls -l /proc" on a freshly
// booted system populated with a few user processes. The name of each entry
// is the process id, the owner and group are the real ids, and the size is
// the total virtual memory size — zero for the system processes 0 and 2.
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/types"
)

func main() {
	s := repro.NewSystem()
	// A population like the figure's: root daemons and user programs.
	progs := []struct {
		name string
		uid  int
		gid  int
		src  string
	}{
		{"cron", 0, 0, "loop:\tmovi r0, SYS_pause\n\tsyscall\n\tjmp loop\n"},
		{"rrg_sh", 206, 10, "loop:\tjmp loop\n"},
		{"weather", 370, 10, "loop:\tjmp loop\n.bss\nbuf:\t.space 500000\n"},
		{"raf_sh", 393, 10, "loop:\tjmp loop\n.bss\nbuf:\t.space 400000\n"},
	}
	for _, pr := range progs {
		if _, err := s.SpawnProg(pr.name, pr.src, types.UserCred(pr.uid, pr.gid)); err != nil {
			fmt.Fprintf(os.Stderr, "prls: %s: %v\n", pr.name, err)
			os.Exit(1)
		}
	}
	s.Run(10)

	names := func(uid, gid int) (string, string) {
		users := map[int]string{0: "root", 206: "rrg", 370: "weath", 393: "raf"}
		groups := map[int]string{0: "root", 10: "staff"}
		u, ok := users[uid]
		if !ok {
			u = fmt.Sprint(uid)
		}
		g, ok := groups[gid]
		if !ok {
			g = fmt.Sprint(gid)
		}
		return u, g
	}
	if err := lsproc(s, names); err != nil {
		fmt.Fprintln(os.Stderr, "prls:", err)
		os.Exit(1)
	}
}
