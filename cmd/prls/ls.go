package main

import (
	"os"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
)

// lsproc prints the listing as the super-user (like ls run by root).
func lsproc(s *repro.System, names func(uid, gid int) (string, string)) error {
	return tools.LsProc(s.Client(types.RootCred()), os.Stdout, names)
}
