// Command benchjson runs the repository's key benchmarks and records the
// results as JSON, so performance numbers ride along with the code instead
// of living in commit messages. Each invocation writes one labeled result
// set into the output file, merging with whatever labels are already there —
// run once with REPRO_NOTLB=1 under the label "before" and once normally
// under "after" to capture a fast-path comparison in a single file.
//
// With -workload it runs the macro scenarios from internal/workload instead
// of go test micro benchmarks: each scenario's latency percentiles land in
// the result's extra fields (p50_ns, p95_ns, p99_ns, max_ns, ops_per_s), and
// the /proc scan runs twice — once batched through PIOCSNAP, once with the
// per-pid -legacy protocol — so the file captures the comparison directly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// defaultBench selects the benchmarks that characterize the vCPU memory
// pipeline and the /proc control surface.
const defaultBench = "BenchmarkKernelStep$|BenchmarkKernelStepTraced$|BenchmarkKernelStepRecorded$|" +
	"BenchmarkASRead64K_Proc$|BenchmarkCOWFault$|BenchmarkBreakpoints_Proc$|BenchmarkWatchpointNoWatch$"

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Commit      string             `json:"commit,omitempty"`
	Warning     string             `json:"warning,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// commit is the working tree's HEAD at run time, resolved once in main; a
// result file found months later can be pinned back to the code it measured.
var commit string

// gitCommit returns the short hash of HEAD, or "" when git or the
// repository is unavailable (the results are still usable, just unpinned).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchLine matches one line of go test -bench output: the name, the
// iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(out []byte) map[string]Result {
	results := make(map[string]Result)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] = v
			}
		}
		results[procsSuffix.ReplaceAllString(m[1], "")] = r
	}
	return results
}

// procsSuffix matches the -N GOMAXPROCS suffix go test appends to benchmark
// names; results are keyed without it so labels compare across machines.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// toResult flattens one scenario report into the benchjson shape: the mean
// is the headline ns/op, the distribution rides in the extra fields.
func toResult(res workload.Result) Result {
	return Result{
		Iterations: int64(res.Ops),
		NsPerOp:    res.MeanNs,
		Extra: map[string]float64{
			"p50_ns":    res.P50Ns,
			"p95_ns":    res.P95Ns,
			"p99_ns":    res.P99Ns,
			"max_ns":    res.MaxNs,
			"ops_per_s": res.OpsPerSec,
		},
	}
}

// annotateHost stamps a result with the execution environment — host CPU
// count, GOMAXPROCS, (when SMP) the simulated CPU count, and the git commit
// — so a scaling curve recorded on one machine is interpretable on another.
// A simulated-SMP run on a single-core host gets an explicit warning: the
// workers cannot actually run in parallel, so the timings measure
// contention, not scaling.
func annotateHost(r *Result, ncpu int) {
	if r.Extra == nil {
		r.Extra = make(map[string]float64)
	}
	r.Extra["host_cpus"] = float64(runtime.NumCPU())
	r.Extra["gomaxprocs"] = float64(runtime.GOMAXPROCS(0))
	if ncpu > 1 {
		r.Extra["ncpu"] = float64(ncpu)
	}
	r.Commit = commit
	if ncpu > 1 && runtime.NumCPU() == 1 {
		r.Warning = fmt.Sprintf(
			"host has 1 CPU but -ncpu %d: SMP workers cannot run in parallel; timings measure contention, not scaling", ncpu)
	}
}

// runOne executes one scenario, closing the booted system (the SMP
// scheduler parks persistent workers that must be retired) and measuring
// host allocations per operation across the run.
func runOne(name string, cfg workload.Config) (Result, error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, s, err := workload.Run(name, cfg)
	runtime.ReadMemStats(&m1)
	if s != nil {
		s.Close()
	}
	if err != nil {
		return Result{}, err
	}
	r := toResult(res)
	if res.Ops > 0 {
		r.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / int64(res.Ops)
	}
	annotateHost(&r, cfg.NCPU)
	return r, nil
}

// runWorkloads executes every scenario matching the pattern and returns the
// keyed results. The /proc scan runs in both modes under distinct keys; the
// batched-vs-legacy margin is the whole point of recording it.
func runWorkloads(pattern string, cfg workload.Config) (map[string]Result, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bad -workload regex %q: %v", pattern, err)
	}
	results := make(map[string]Result)
	for _, name := range workload.Names() {
		if !re.MatchString(name) {
			continue
		}
		if name == "proc_scan" {
			for _, mode := range []string{"batched", "legacy"} {
				mcfg := cfg
				mcfg.Legacy = mode == "legacy"
				r, err := runOne(name, mcfg)
				if err != nil {
					return nil, err
				}
				key := "Workload/" + name + "/" + mode
				results[key] = r
				printWorkload(key, r)
			}
			continue
		}
		r, err := runOne(name, cfg)
		if err != nil {
			return nil, err
		}
		key := "Workload/" + name
		results[key] = r
		printWorkload(key, r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no scenario matches %q (have %v)", pattern, workload.Names())
	}
	return results, nil
}

func printWorkload(key string, r Result) {
	fmt.Printf("%-40s %6d ops  mean %12.0f ns  p50 %12.0f  p95 %12.0f  p99 %12.0f  %8.1f ops/s  %d allocs/op\n",
		key, r.Iterations, r.NsPerOp, r.Extra["p50_ns"], r.Extra["p95_ns"], r.Extra["p99_ns"],
		r.Extra["ops_per_s"], r.AllocsPerOp)
}

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	label := flag.String("label", "after", "result-set label in the output file")
	out := flag.String("o", "BENCH_PR3.json", "output JSON file; empty writes to stdout only")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	wl := flag.String("workload", "", "run macro workload scenarios matching this regex instead of micro benchmarks")
	wops := flag.Int("wops", 0, "workload: operations per scenario (0 = scenario default)")
	wprocs := flag.Int("wprocs", 0, "workload: population size (0 = scenario default)")
	wseed := flag.Int64("wseed", 1, "workload: scenario seed")
	ncpu := flag.Int("ncpu", 0, "scheduler CPUs: 0 = deterministic default; above 1 runs the SMP scheduler (workloads directly, micro benchmarks via REPRO_NCPU)")
	flag.Parse()
	commit = gitCommit()

	var results map[string]Result
	if *wl != "" {
		var err error
		results, err = runWorkloads(*wl, workload.Config{
			Seed: *wseed, Ops: *wops, Procs: *wprocs, NCPU: *ncpu,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	} else {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
			"-benchmem", "-benchtime", *benchtime, *pkg)
		cmd.Env = os.Environ()
		if *ncpu > 0 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("REPRO_NCPU=%d", *ncpu))
		}
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, buf.Bytes())
			os.Exit(1)
		}
		os.Stdout.Write(buf.Bytes())
		results = parse(buf.Bytes())
		if len(results) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
			os.Exit(1)
		}
		for k, r := range results {
			annotateHost(&r, *ncpu)
			results[k] = r
		}
	}
	if *out == "" {
		return
	}

	all := make(map[string]map[string]Result)
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &all); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not benchjson output: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if existing, ok := all[*label]; ok {
		// Merging keeps one label's micro and workload runs in one set.
		for k, v := range results {
			existing[k] = v
		}
		results = existing
	}
	all[*label] = results
	enc, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n",
		len(results), *label, *out)
}
