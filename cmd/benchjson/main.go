// Command benchjson runs the repository's key benchmarks and records the
// results as JSON, so performance numbers ride along with the code instead
// of living in commit messages. Each invocation writes one labeled result
// set into the output file, merging with whatever labels are already there —
// run once with REPRO_NOTLB=1 under the label "before" and once normally
// under "after" to capture a fast-path comparison in a single file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// defaultBench selects the benchmarks that characterize the vCPU memory
// pipeline and the /proc control surface.
const defaultBench = "BenchmarkKernelStep$|BenchmarkKernelStepTraced$|BenchmarkASRead64K_Proc$|" +
	"BenchmarkCOWFault$|BenchmarkBreakpoints_Proc$|BenchmarkWatchpointNoWatch$"

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches one line of go test -bench output: the name, the
// iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(out []byte) map[string]Result {
	results := make(map[string]Result)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] = v
			}
		}
		results[procsSuffix.ReplaceAllString(m[1], "")] = r
	}
	return results
}

// procsSuffix matches the -N GOMAXPROCS suffix go test appends to benchmark
// names; results are keyed without it so labels compare across machines.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	label := flag.String("label", "after", "result-set label in the output file")
	out := flag.String("o", "BENCH_PR3.json", "output JSON file; empty writes to stdout only")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, *pkg)
	cmd.Env = os.Environ()
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, buf.Bytes())
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	results := parse(buf.Bytes())
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}
	if *out == "" {
		return
	}

	all := make(map[string]map[string]Result)
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &all); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not benchjson output: %v\n", *out, err)
			os.Exit(1)
		}
	}
	all[*label] = results
	enc, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results under label %q to %s\n",
		len(results), *label, *out)
}
