// bfs is the host-side blockfs image tool: format, check, churn and
// crash-test a file-backed image through the real on-disk code paths.
//
//	bfs -img disk.img mkfs  -blocks 1024
//	bfs -img disk.img churn -seed 7 -ops 40        # run a mill to completion
//	bfs -img disk.img crash -seed 7 -ops 40 -kill 120  # die at write ordinal 120
//	bfs -img disk.img fsck                         # mount (replaying the journal), check
//	bfs -img disk.img ls                           # list the tree
//
// The crash subcommand is the storm's real-binary form: the image is left
// exactly as a power loss at that write ordinal would leave it, and a
// following fsck run must mount it, replay the journal and report a clean
// image — which is what `make crash-smoke` drives.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/blockfs"
	"repro/internal/fault"
	"repro/internal/types"
	"repro/internal/vfs"
)

func main() {
	img := flag.String("img", "", "image file path")
	flag.Parse()
	args := flag.Args()
	if *img == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: bfs -img FILE {mkfs|churn|crash|fsck|ls} [flags]")
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	if err := dispatch(*img, cmd, rest); err != nil {
		fmt.Fprintf(os.Stderr, "bfs %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func dispatch(img, cmd string, rest []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	blocks := fs.Int("blocks", 1024, "device size in blocks (mkfs)")
	seed := fs.Int64("seed", 7, "workload seed (churn, crash)")
	ops := fs.Int("ops", 40, "workload operations (churn, crash)")
	kill := fs.Uint64("kill", 0, "die at this device-write ordinal (crash; 0 picks one from the seed)")
	fs.Parse(rest)

	switch cmd {
	case "mkfs":
		dev, err := blockfs.OpenFileDev(img, uint32(*blocks))
		if err != nil {
			return err
		}
		defer dev.Close()
		if err := blockfs.Mkfs(dev, 0); err != nil {
			return err
		}
		fmt.Printf("formatted %s: %d blocks\n", img, *blocks)
		return nil
	case "churn":
		dev, err := blockfs.OpenFileDev(img, 0)
		if err != nil {
			return err
		}
		defer dev.Close()
		mfs, err := blockfs.Mount(dev)
		if err != nil {
			return err
		}
		if err := churn(mfs, *seed, *ops, nil); err != nil {
			return err
		}
		if err := mfs.Sync(); err != nil {
			return err
		}
		fmt.Printf("churned %s: %d ops, clean sync\n", img, *ops)
		return nil
	case "crash":
		raw, err := blockfs.OpenFileDev(img, 0)
		if err != nil {
			return err
		}
		defer raw.Close()
		cd := blockfs.NewCrashDev(raw)
		k := *kill
		if k == 0 {
			// A seeded ordinal somewhere inside the workload's write stream.
			k = 1 + uint64(rand.New(rand.NewSource(*seed)).Intn(8**ops))
		}
		fault.Default.Register("blockfs.crash").Arm(fault.Spec{Nth: k})
		defer fault.Default.Reset()
		mfs, err := blockfs.Mount(cd)
		if err != nil {
			return fmt.Errorf("mount: %w", err)
		}
		cerr := churn(mfs, *seed, *ops, func() bool { return cd.Dead() })
		if cerr != nil && !errors.Is(cerr, blockfs.ErrCrashed) {
			return cerr
		}
		if !cd.Dead() {
			// The workload made fewer writes than k; still a valid image.
			if err := mfs.Sync(); err != nil && !errors.Is(err, blockfs.ErrCrashed) {
				return err
			}
		}
		fmt.Printf("crashed %s at write ordinal %d (%d writes survived)\n", img, k, cd.Writes())
		return nil
	case "fsck":
		dev, err := blockfs.OpenFileDev(img, 0)
		if err != nil {
			return err
		}
		defer dev.Close()
		mfs, err := blockfs.Mount(dev) // replays the journal
		if err != nil {
			return err
		}
		if bad := mfs.Fsck(); len(bad) != 0 {
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, m)
			}
			return fmt.Errorf("%d violations", len(bad))
		}
		fmt.Printf("%s: clean\n", img)
		return nil
	case "ls":
		dev, err := blockfs.OpenFileDev(img, 0)
		if err != nil {
			return err
		}
		defer dev.Close()
		mfs, err := blockfs.Mount(dev)
		if err != nil {
			return err
		}
		return list(mfs.Root(), "")
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

var cred = types.RootCred()

// churn is the deterministic mill: seeded create/write/unlink traffic over a
// small set of names, with periodic syncs. dead short-circuits the loop once
// the device has died under a crash run.
func churn(mfs *blockfs.FS, seed int64, ops int, dead func() bool) error {
	rng := rand.New(rand.NewSource(seed))
	root := mfs.Root().(vfs.DirWriter)
	for i := 0; i < ops; i++ {
		if dead != nil && dead() {
			return blockfs.ErrCrashed
		}
		name := fmt.Sprintf("f%d", rng.Intn(8))
		var err error
		switch op := rng.Intn(10); {
		case op < 6:
			err = writeFile(mfs, name, rng.Int63(), 1+rng.Intn(16*blockfs.BlockSize))
		case op < 9:
			err = root.VRemove(name, cred)
		default:
			err = mfs.Sync()
		}
		if err != nil && !errors.Is(err, vfs.ErrNotExist) && !errors.Is(err, vfs.ErrNoSpace) {
			return err
		}
	}
	return nil
}

func writeFile(mfs *blockfs.FS, name string, seed int64, size int) error {
	root := mfs.Root()
	vn, err := root.VLookup(name, cred)
	if errors.Is(err, vfs.ErrNotExist) {
		vn, err = root.(vfs.DirWriter).VCreate(name, 0o644, cred)
	}
	if err != nil {
		return err
	}
	h, err := vn.VOpen(vfs.OWrite|vfs.OTrunc, cred)
	if err != nil {
		return err
	}
	defer h.HClose()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	_, err = h.HWrite(data, 0)
	return err
}

func list(d vfs.Dir, prefix string) error {
	ents, err := d.VReadDir(cred)
	if err != nil {
		return err
	}
	for _, e := range ents {
		fmt.Printf("%s%s\t%d\n", prefix, e.Name, e.Attr.Size)
		if e.Attr.Type == vfs.VDIR {
			vn, err := d.VLookup(e.Name, cred)
			if err != nil {
				return err
			}
			if err := list(vn.(vfs.Dir), prefix+e.Name+"/"); err != nil {
				return err
			}
		}
	}
	return nil
}
