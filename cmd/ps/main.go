// Command ps is the SVR4 ps(1) reimplemented on /proc. By default it takes
// one batched PIOCSNAP on the /proc directory — the whole listing is a true
// snapshot of the system; with -legacy it runs the paper's per-pid protocol
// instead: read the /proc directory, open each process read-only, issue
// PIOCPSINFO, print. It runs with super-user privilege, so the opens always
// succeed and no interference is created for controlling and controlled
// processes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
)

func main() {
	legacy := flag.Bool("legacy", false, "use the per-pid open+PIOCPSINFO sweep instead of PIOCSNAP")
	flag.Parse()

	s := repro.NewSystem()
	// A demonstrative population: runners, sleepers, a stopped process
	// and a zombie.
	s.SpawnProg("worker", "loop:\tjmp loop\n", types.UserCred(100, 10))
	s.SpawnProg("sleeper", `
	movi r0, SYS_pause
	syscall
`, types.UserCred(100, 10))
	stopped, _ := s.SpawnProg("stopped", "loop:\tjmp loop\n", types.UserCred(200, 20))
	s.SpawnProg("zombie_parent", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:	jmp parent
`, types.UserCred(300, 30))
	s.Run(50)
	if stopped != nil {
		s.K.PostSignal(stopped, types.SIGSTOP)
	}
	s.Run(10)

	ps := tools.PS
	if *legacy {
		ps = tools.PSLegacy
	}
	if err := ps(s.Client(types.RootCred()), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ps:", err)
		os.Exit(1)
	}
}
