// Command vsh is a small job-control shell for the simulated system. It
// exists to demonstrate the paper's "competing mechanisms" interactively:
// job-control stop signals (stop/fg/bg) versus /proc stops (pstop/prun),
// including the rule that a job-control-stopped process is restarted only
// by SIGCONT while "/proc gets the last word".
//
// Commands (reads standard input, so it can be driven by a script):
//
//	ls                 list installed programs
//	run <prog>         start a program in the background
//	jobs               list jobs and their states
//	wait %n            wait for a job to exit (or stop)
//	stop %n            send SIGTSTP (job-control stop)
//	fg %n              send SIGCONT and wait
//	bg %n              send SIGCONT and leave it running
//	kill %n [signal]   send a signal (default SIGTERM)
//	pstop %n           direct a /proc stop (PIOCSTOP)
//	prun %n            release a /proc stop (PIOCRUN)
//	pfiles %n          show a job's open files (via the deprecated PIOCGETU)
//	ps                 run ps(1)
//	truss <prog>       run a program under truss
//	quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

// The preinstalled demo programs.
var programs = map[string]string{
	"counter": `
loop:	la r3, n
	ld r4, [r3]
	addi r4, 1
	st r4, [r3]
	movi r0, SYS_sleep
	movi r1, 20
	syscall
	jmp loop
.data
n:	.word 0
`,
	"spin": `
loop:	jmp loop
`,
	"tenify": `
	movi r5, 10
loop:	movi r0, SYS_sleep
	movi r1, 30
	syscall
	addi r5, -1
	cmpi r5, 0
	jne loop
	movi r0, SYS_exit
	movi r1, 10
	syscall
`,
	"crasher": `
	movi r1, 1
	movi r2, 0
	div r1, r2
`,
	"hello": `
	movi r0, SYS_creat
	la r1, path
	movi r2, 0x1B6
	syscall
	mov r6, r0
	movi r0, SYS_write
	mov r1, r6
	la r2, msg
	movi r3, 6
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
path:	.asciz "/tmp/hello.out"
msg:	.ascii "hello\n"
`,
}

type job struct {
	id   int
	p    *kernel.Proc
	name string
}

type shell struct {
	s      *repro.System
	jobs   []*job
	nextID int
	cred   types.Cred
}

func main() {
	sh := &shell{s: repro.NewSystem(), cred: types.UserCred(100, 10)}
	for name, src := range programs {
		if err := sh.s.Install("/bin/"+name, src, 0o755, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, "vsh:", err)
			os.Exit(1)
		}
	}
	fmt.Println("vsh: simulated-system shell; 'ls' lists programs, 'quit' exits")
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("vsh$ ")
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return
		}
		sh.dispatch(fields)
	}
}

func (sh *shell) dispatch(fields []string) {
	switch fields[0] {
	case "ls":
		ents, err := sh.s.Client(sh.cred).ReadDir("/bin")
		if err != nil {
			fmt.Println("vsh:", err)
			return
		}
		for _, e := range ents {
			fmt.Println(e.Name)
		}
	case "run":
		if len(fields) < 2 {
			fmt.Println("usage: run <prog>")
			return
		}
		sh.run(fields[1])
	case "jobs":
		sh.reap()
		for _, j := range sh.jobs {
			fmt.Printf("[%d] pid %d %-10s %s\n", j.id, j.p.Pid, j.name, jobState(j.p))
		}
	case "wait", "fg", "bg", "stop", "kill", "pstop", "prun", "pfiles":
		if len(fields) < 2 {
			fmt.Printf("usage: %s %%n\n", fields[0])
			return
		}
		j := sh.lookup(fields[1])
		if j == nil {
			fmt.Println("vsh: no such job")
			return
		}
		sh.control(fields[0], j, fields[2:])
	case "ps":
		tools.PS(sh.s.Client(types.RootCred()), os.Stdout)
	case "truss":
		if len(fields) < 2 {
			fmt.Println("usage: truss <prog>")
			return
		}
		p, err := sh.s.Spawn("/bin/"+fields[1], nil, sh.cred)
		if err != nil {
			fmt.Println("vsh:", err)
			return
		}
		tr := tools.NewTruss(sh.s, os.Stdout, types.RootCred())
		if err := tr.TraceToExit(p, 10_000_000); err != nil {
			fmt.Println("vsh: truss:", err)
		}
	default:
		fmt.Println("vsh: unknown command:", fields[0])
	}
}

func (sh *shell) run(name string) {
	p, err := sh.s.Spawn("/bin/"+name, nil, sh.cred)
	if err != nil {
		fmt.Println("vsh:", err)
		return
	}
	sh.nextID++
	j := &job{id: sh.nextID, p: p, name: name}
	sh.jobs = append(sh.jobs, j)
	fmt.Printf("[%d] pid %d\n", j.id, p.Pid)
	sh.s.Run(5)
}

func (sh *shell) lookup(ref string) *job {
	ref = strings.TrimPrefix(ref, "%")
	n, err := strconv.Atoi(ref)
	if err != nil {
		return nil
	}
	for _, j := range sh.jobs {
		if j.id == n {
			return j
		}
	}
	return nil
}

func (sh *shell) control(cmd string, j *job, rest []string) {
	p := j.p
	switch cmd {
	case "wait", "fg":
		if cmd == "fg" {
			sh.s.K.PostSignal(p, types.SIGCONT)
		}
		err := sh.s.RunUntil(func() bool {
			return !p.Alive() || stoppedByJobControl(p)
		}, 10_000_000)
		if err != nil {
			fmt.Println("vsh:", err)
			return
		}
		if !p.Alive() {
			sh.report(j)
		} else {
			fmt.Printf("[%d] stopped\n", j.id)
		}
	case "bg":
		sh.s.K.PostSignal(p, types.SIGCONT)
		sh.s.Run(5)
		fmt.Printf("[%d] continued\n", j.id)
	case "stop":
		sh.s.K.PostSignal(p, types.SIGTSTP)
		sh.s.Run(10)
		fmt.Printf("[%d] %s\n", j.id, jobState(p))
	case "kill":
		sig := types.SIGTERM
		if len(rest) > 0 {
			if n := types.SigNumber(rest[0]); n != 0 {
				sig = n
			} else if n, err := strconv.Atoi(rest[0]); err == nil {
				sig = n
			}
		}
		sh.s.K.PostSignal(p, sig)
		sh.s.Run(10)
		sh.reap()
	case "pstop":
		f, err := sh.s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
		if err != nil {
			fmt.Println("vsh:", err)
			return
		}
		defer f.Close()
		var st kernel.ProcStatus
		if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
			fmt.Println("vsh:", err)
			return
		}
		fmt.Printf("[%d] /proc stop: why=%v pc=%#x\n", j.id, st.Why, st.Reg.PC)
	case "prun":
		f, err := sh.s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
		if err != nil {
			fmt.Println("vsh:", err)
			return
		}
		defer f.Close()
		if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
			fmt.Println("vsh:", err)
			return
		}
		fmt.Printf("[%d] running\n", j.id)
	case "pfiles":
		f, err := sh.s.OpenProc(p.Pid, vfs.ORead, types.RootCred())
		if err != nil {
			fmt.Println("vsh:", err)
			return
		}
		defer f.Close()
		var u procfs.UArea
		if err := f.Ioctl(procfs.PIOCGETU, &u); err != nil {
			fmt.Println("vsh:", err)
			return
		}
		fmt.Printf("[%d] cwd=%s umask=%03o\n", j.id, u.CWD, u.Umask)
		for _, fd := range u.FDs {
			of := p.FD(fd)
			if of == nil {
				continue
			}
			attr, err := of.VN.VAttr()
			if err != nil {
				continue
			}
			kind := "file"
			switch attr.Type {
			case vfs.VDIR:
				kind = "dir"
			case vfs.VFIFO:
				kind = "pipe"
			case vfs.VPROC:
				kind = "proc"
			}
			fmt.Printf("  fd %2d: %-4s mode %s size %d\n", fd, kind, vfs.FmtMode(attr.Mode), attr.Size)
		}
	}
}

// reap reports and drops exited jobs.
func (sh *shell) reap() {
	kept := sh.jobs[:0]
	for _, j := range sh.jobs {
		if !j.p.Alive() {
			sh.report(j)
			continue
		}
		kept = append(kept, j)
	}
	sh.jobs = kept
}

func (sh *shell) report(j *job) {
	status := j.p.ExitStatus
	if ok, code := kernel.WIfExited(status); ok {
		fmt.Printf("[%d] exited %d\n", j.id, code)
		return
	}
	if ok, sig, core := kernel.WIfSignaled(status); ok {
		suffix := ""
		if core {
			suffix = " (core dumped)"
		}
		fmt.Printf("[%d] killed by %s%s\n", j.id, types.SigName(sig), suffix)
	}
}

func jobState(p *kernel.Proc) string {
	if !p.Alive() {
		return "done"
	}
	l := p.Rep()
	if l == nil {
		return "?"
	}
	switch {
	case l.StoppedOnEvent():
		return "stopped (/proc)"
	case l.Stopped():
		return "stopped (job control)"
	case l.Asleep():
		return "sleeping"
	}
	return "running"
}

func stoppedByJobControl(p *kernel.Proc) bool {
	l := p.Rep()
	if l == nil {
		return false
	}
	why, _ := l.Why()
	return l.Stopped() && why == kernel.WhyJobControl
}
