// Command rfsctl is the remote process-control client for rfsd: the
// paper's "inspect, modify and control processes running on any machine in
// an RFS network", as a command line.
//
//	rfsctl [-addr host:port] ps            list remote processes
//	rfsctl [-addr host:port] status <pid>  remote PIOCSTATUS
//	rfsctl [-addr host:port] map <pid>     remote PIOCMAP
//	rfsctl [-addr host:port] cred <pid>    remote PIOCCRED
//	rfsctl [-addr host:port] usage <pid>   remote PIOCUSAGE
//	rfsctl [-addr host:port] stop <pid>    remote PIOCSTOP
//	rfsctl [-addr host:port] run <pid>     remote PIOCRUN
//	rfsctl [-addr host:port] kill <pid> <signal>
//	rfsctl [-addr host:port] faults                  list fault-injection sites
//	rfsctl [-addr host:port] faults <site> [k=v...]  arm a site ("mem.page nth=3 pid=5")
//	rfsctl [-addr host:port] faults clear [site]     disarm all sites (or one)
//	rfsctl [-addr host:port] faults reset            disarm and zero all counters
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

func fail(args ...interface{}) {
	fmt.Fprintln(os.Stderr, append([]interface{}{"rfsctl:"}, args...)...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7909", "rfsd address")
	flag.Parse()
	if flag.NArg() < 1 {
		fail("usage: rfsctl [-addr host:port] ps|status|map|stop|run|kill|faults ...")
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fail(err)
	}
	defer conn.Close()
	// The multiplexed transport: a bounded wait per request, and idempotent
	// ops (read, stat, readdir, poll) retried past a lost response instead
	// of hanging the command line forever.
	mt, err := rfs.NewMuxTransport(conn)
	if err != nil {
		fail(err)
	}
	defer mt.Close()
	mt.Timeout = 5 * time.Second
	mt.Retries = 2
	cl := rfs.NewClient(mt, types.RootCred())

	cmd := flag.Arg(0)
	if cmd == "ps" {
		ents, err := cl.ReadDir("/proc")
		if err != nil {
			fail(err)
		}
		fmt.Printf("%7s %5s %5s %9s %s\n", "PID", "UID", "GID", "VSZ", "COMD")
		for _, e := range ents {
			f, err := cl.Open("/proc/"+e.Name, vfs.ORead)
			if err != nil {
				continue
			}
			var info kernel.PSInfo
			if err := f.Ioctl(procfs.PIOCPSINFO, &info); err == nil {
				fmt.Printf("%7d %5d %5d %9d %s [%c]\n",
					info.Pid, info.UID, info.GID, info.VSize, info.Comm, info.State)
			}
			f.Close()
		}
		return
	}

	if cmd == "faults" {
		// The remote fault-injection control file: with no further
		// arguments, dump the site listing; otherwise the remaining
		// arguments form one control command ("mem.page nth=3", "clear",
		// "reset") written to it.
		if flag.NArg() == 1 {
			f, err := cl.Open("/procx/faults", vfs.ORead)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			buf := make([]byte, 4096)
			var off int64
			for {
				n, err := f.Pread(buf, off)
				if n > 0 {
					os.Stdout.Write(buf[:n])
					off += int64(n)
				}
				if err != nil || n == 0 {
					return
				}
			}
		}
		f, err := cl.Open("/procx/faults", vfs.OWrite)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		line := strings.Join(flag.Args()[1:], " ")
		if _, err := f.Write([]byte(line)); err != nil {
			fail(err)
		}
		fmt.Println("ok:", line)
		return
	}

	if flag.NArg() < 2 {
		fail("missing pid")
	}
	pid, err := strconv.Atoi(flag.Arg(1))
	if err != nil {
		fail("bad pid:", flag.Arg(1))
	}
	flags := vfs.ORead
	switch cmd {
	case "status", "map", "cred", "usage":
	default:
		flags |= vfs.OWrite
	}
	f, err := cl.Open("/proc/"+procfs.PidName(pid), flags)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	switch cmd {
	case "status":
		var st kernel.ProcStatus
		if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
			fail(err)
		}
		fmt.Printf("pid %d ppid %d pgrp %d: flags=%#x why=%v what=%d cursig=%d\n",
			st.Pid, st.PPid, st.Pgrp, st.Flags, st.Why, st.What, st.CurSig)
		fmt.Printf("pc=%#x sp=%#x vsize=%d lwps=%d utime=%d stime=%d\n",
			st.Reg.PC, st.Reg.SP, st.VSize, st.NLWP, st.UTime, st.STime)
	case "map":
		var maps []procfs.PrMap
		if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
			fail(err)
		}
		for _, m := range maps {
			fmt.Printf("%08X %6dK %-10s %s\n", m.Vaddr, (int64(m.Size)+1023)/1024, m.Prot, m.Name)
		}
	case "stop":
		var st kernel.ProcStatus
		if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
			fail(err)
		}
		fmt.Printf("stopped: why=%v pc=%#x\n", st.Why, st.Reg.PC)
	case "run":
		if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
			fail(err)
		}
		fmt.Println("running")
	case "cred":
		var cred types.Cred
		if err := f.Ioctl(procfs.PIOCCRED, &cred); err != nil {
			fail(err)
		}
		fmt.Printf("ruid=%d euid=%d suid=%d rgid=%d egid=%d sgid=%d groups=%v\n",
			cred.RUID, cred.EUID, cred.SUID, cred.RGID, cred.EGID, cred.SGID, cred.Groups)
	case "usage":
		var u procfs.PrUsage
		if err := f.Ioctl(procfs.PIOCUSAGE, &u); err != nil {
			fail(err)
		}
		fmt.Printf("utime=%d stime=%d syscalls=%d faults=%d signals=%d\n",
			u.UserTicks, u.SysTicks, u.Syscalls, u.Faults, u.Signals)
		fmt.Printf("minor=%d cow=%d watch-recover=%d stack-grows=%d vctx=%d ictx=%d\n",
			u.MinorFaults, u.COWFaults, u.WatchRecover, u.StackGrows, u.VolCtx, u.InvolCtx)
	case "kill":
		if flag.NArg() < 3 {
			fail("usage: kill <pid> <signal>")
		}
		sig := types.SigNumber(flag.Arg(2))
		if sig == 0 {
			if n, err := strconv.Atoi(flag.Arg(2)); err == nil {
				sig = n
			}
		}
		if sig == 0 {
			fail("bad signal:", flag.Arg(2))
		}
		if err := f.Ioctl(procfs.PIOCKILL, &sig); err != nil {
			fail(err)
		}
		fmt.Printf("sent %s\n", types.SigName(sig))
	default:
		fail("unknown command:", cmd)
	}
}
