// Command prmap reproduces the paper's Figure 2: the memory map of a
// process obtained with PIOCMAP — "a simple tool that reports the contents
// of the map structures". The demo program maps a shared library, so the
// listing shows private read/exec and read/write mappings from both the
// a.out and the library, plus the stack and break mappings the system is
// prepared to grow.
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
)

const library = `
; libdemo: a shared library with code and data
lib_entry:
	ret
.data
lib_table:
	.word 1, 2, 3, 4
`

const program = `
.lib "libdemo"
main:	jmp main
.data
message: .ascii "initialized data"
.bss
buffer:	.space 65536
`

func main() {
	s := repro.NewSystem()
	if err := s.Install("/lib/libdemo", library, 0o755, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, "prmap:", err)
		os.Exit(1)
	}
	p, err := s.SpawnProg("demo", program, types.UserCred(100, 10))
	if err != nil {
		fmt.Fprintln(os.Stderr, "prmap:", err)
		os.Exit(1)
	}
	s.Run(5)
	fmt.Printf("memory map of pid %d (%s):\n", p.Pid, p.Comm)
	if err := tools.PrMap(s.Client(types.RootCred()), p.Pid, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prmap:", err)
		os.Exit(1)
	}
}
