package main

import (
	"fmt"
	"net"
	"os"

	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

func main() {
	conn, err := net.Dial("tcp", "127.0.0.1:7911")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cl := rfs.NewClient(&rfs.ConnTransport{Conn: conn}, types.RootCred())
	f, err := cl.Open("/proc", vfs.ORead)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open /proc:", err)
		os.Exit(1)
	}
	defer f.Close()
	sn := procfs.PrSnap{WithUsage: true}
	if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
		fmt.Fprintln(os.Stderr, "PIOCSNAP:", err)
		os.Exit(1)
	}
	fmt.Printf("rev=%d churned=%v records=%d\n", sn.Rev, sn.Churned, len(sn.Procs))
	for _, rec := range sn.Procs {
		fmt.Printf("  pid=%d comm=%s state=%c utime=%d syscalls=%d\n",
			rec.Info.Pid, rec.Info.Comm, rec.Info.State, rec.Usage.UserTicks, rec.Usage.Syscalls)
	}
	// Stale-token round trip: the table is static, so no churn.
	again := procfs.PrSnap{Rev: sn.Rev}
	if err := f.Ioctl(procfs.PIOCSNAP, &again); err != nil {
		fmt.Fprintln(os.Stderr, "re-snap:", err)
		os.Exit(1)
	}
	fmt.Printf("re-snap: rev=%d churned=%v\n", again.Rev, again.Churned)
	// A non-super client on the same server must see a filtered table.
	conn2, err := net.Dial("tcp", "127.0.0.1:7911")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ucl := rfs.NewClient(&rfs.ConnTransport{Conn: conn2}, types.UserCred(100, 10))
	uf, err := ucl.Open("/proc", vfs.ORead)
	if err != nil {
		fmt.Fprintln(os.Stderr, "user open /proc:", err)
		os.Exit(1)
	}
	defer uf.Close()
	var usn procfs.PrSnap
	if err := uf.Ioctl(procfs.PIOCSNAP, &usn); err != nil {
		fmt.Fprintln(os.Stderr, "user PIOCSNAP:", err)
		os.Exit(1)
	}
	fmt.Printf("uid100 snapshot: %d records:", len(usn.Procs))
	for _, rec := range usn.Procs {
		fmt.Printf(" %s(uid=%d)", rec.Info.Comm, rec.Info.UID)
	}
	fmt.Println()
}
