//go:build race

package repro_test

// raceEnabled reports whether the race detector is compiled in; allocation
// budgets are skipped under it (instrumentation allocates).
const raceEnabled = true
